package recovery

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hcode"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/parallel"
)

func allCodes(p int) map[string]layout.Code {
	return map[string]layout.Code{
		"code56":  core.MustNew(p),
		"rdp":     rdp.MustNew(p),
		"evenodd": evenodd.MustNew(p),
		"xcode":   xcode.MustNew(p),
		"hcode":   hcode.MustNew(p),
		"hdp":     hdp.MustNew(p),
		"pcode":   pcode.MustNew(p, pcode.VariantPMinus1),
	}
}

// TestPlanAndExecuteEveryCodeEveryColumn: for every code and every failed
// column, the optimized plan must rebuild the column correctly, read no
// more blocks than the conventional strategy, and match its promised read
// count when executed.
func TestPlanAndExecuteEveryCodeEveryColumn(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []int{5, 7} {
		for name, code := range allCodes(p) {
			g := code.Geometry()
			orig := layout.NewStripe(g, 16)
			orig.FillRandom(code, r)
			layout.Encode(code, orig)
			for failed := 0; failed < g.Cols; failed++ {
				plan, err := PlanColumn(code, failed)
				if err != nil {
					t.Fatalf("%s p=%d col %d: %v", name, p, failed, err)
				}
				conv, err := ConventionalReads(code, failed)
				if err != nil {
					t.Fatal(err)
				}
				if plan.Reads > conv {
					t.Errorf("%s p=%d col %d: optimized %d reads > conventional %d", name, p, failed, plan.Reads, conv)
				}
				s := orig.Clone()
				s.ZeroColumn(failed)
				st, err := plan.Execute(code, s)
				if err != nil {
					t.Fatalf("%s p=%d col %d: %v", name, p, failed, err)
				}
				if !s.Equal(orig) {
					t.Fatalf("%s p=%d col %d: wrong rebuild", name, p, failed)
				}
				if st.Recovered != g.Rows {
					t.Errorf("%s col %d: recovered %d cells, want %d", name, failed, st.Recovered, g.Rows)
				}
			}
		}
	}
}

// TestMatchesCode56Specialized: the generic planner must find the same
// minimum as Code 5-6's dedicated hybrid planner on data columns.
func TestMatchesCode56Specialized(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		c := core.MustNew(p)
		for failed := 0; failed < p-1; failed++ {
			generic, err := PlanColumn(c, failed)
			if err != nil {
				t.Fatal(err)
			}
			special, err := c.PlanHybridRecovery(failed)
			if err != nil {
				t.Fatal(err)
			}
			if generic.Reads != special.Reads {
				t.Errorf("p=%d col %d: generic %d reads, specialized %d", p, failed, generic.Reads, special.Reads)
			}
		}
	}
}

// TestKnownSavings pins the paper-adjacent numbers: Code 5-6 at p=5 reads
// 9 vs 12 conventional; RDP's hybrid recovery saves reads as Xiang et al.
// describe (25% fewer reads at p=5: 12 vs 16).
func TestKnownSavings(t *testing.T) {
	c56 := core.MustNew(5)
	plan, err := PlanColumn(c56, 1)
	if err != nil {
		t.Fatal(err)
	}
	if conv, _ := ConventionalReads(c56, 1); conv != 12 || plan.Reads != 9 {
		t.Errorf("code56 p=5: %d/%d reads, want 9/12", plan.Reads, conv)
	}
	r := rdp.MustNew(5)
	plan, err = PlanColumn(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	conv, _ := ConventionalReads(r, 1)
	if conv != 16 {
		t.Errorf("rdp p=5 conventional reads = %d, want 16", conv)
	}
	if plan.Reads >= conv {
		t.Errorf("rdp p=5: no hybrid saving (%d vs %d)", plan.Reads, conv)
	}
}

// TestEvenoddManyCandidates: EVENODD's S-diagonal cells belong to every
// diagonal chain, so the candidate space is large; the planner must still
// terminate and produce a correct plan (hill-climbing path).
func TestEvenoddManyCandidates(t *testing.T) {
	code := evenodd.MustNew(11)
	plan, err := PlanColumn(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := layout.NewStripe(code.Geometry(), 8)
	orig.FillRandom(code, rand.New(rand.NewSource(2)))
	layout.Encode(code, orig)
	s := orig.Clone()
	s.ZeroColumn(0)
	if _, err := plan.Execute(code, s); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Fatal("wrong rebuild")
	}
}

func TestPlanColumnRejectsBadColumn(t *testing.T) {
	if _, err := PlanColumn(core.MustNew(5), 9); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := PlanColumn(core.MustNew(5), -1); err == nil {
		t.Error("negative column accepted")
	}
}

// TestExecuteStripesParallelMatchesSerial rebuilds a failed column across
// many stripes with the pool and checks contents and aggregated stats equal
// the per-stripe serial execution.
func TestExecuteStripesParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	code := core.MustNew(7)
	g := code.Geometry()
	const n, failed = 64, 2
	plan, err := PlanColumn(code, failed)
	if err != nil {
		t.Fatal(err)
	}

	origs := make([]*layout.Stripe, n)
	lost := make([]*layout.Stripe, n)
	var wantStats layout.DecodeStats
	for i := range origs {
		origs[i] = layout.NewStripe(g, 32)
		origs[i].FillRandom(code, r)
		layout.Encode(code, origs[i])
		lost[i] = origs[i].Clone()
		lost[i].ZeroColumn(failed)
		// Serial reference stats on a throwaway clone.
		ref := origs[i].Clone()
		ref.ZeroColumn(failed)
		st, err := plan.Execute(code, ref)
		if err != nil {
			t.Fatal(err)
		}
		wantStats.XORs += st.XORs
		wantStats.BlocksRead += st.BlocksRead
		wantStats.Recovered += st.Recovered
	}

	got, err := plan.ExecuteStripes(context.Background(), code, lost, nil, nil, parallel.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lost {
		if !lost[i].Equal(origs[i]) {
			t.Fatalf("stripe %d rebuilt wrong", i)
		}
	}
	if got != wantStats {
		t.Errorf("aggregated stats %+v, want %+v", got, wantStats)
	}

	// Cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.ExecuteStripes(ctx, code, lost, nil, nil, parallel.WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
