// Package lint holds the c56-lint analyzer suite: seven checks that turn
// this repository's load-bearing conventions — invariants that previously
// lived only in reviewers' heads — into mechanically enforced rules.
//
//   - xorloop: block XOR must go through internal/xorblk's kernels. The
//     paper's optimal XOR counts are tallied there, and the zero-alloc wide
//     kernels only help if nothing bypasses them.
//   - bufpoolpair: every bufpool.Get/GetZero must reach a bufpool.Put on
//     every return path (leaks silently re-inflate the allocator traffic
//     the pool exists to remove, and bytes_in_flight drifts upward).
//   - unsafegate: unsafe lives only in the alignment-gated wide kernel file
//     behind the !purego build tag; everything else stays portable.
//   - ctxflow: context-aware entry points must thread their ctx into the
//     parallel fan-out, and library code must not invent contexts.
//   - metricname: telemetry names are compile-time constants in
//     pkg.snake_case with no cross-package duplicates, so dashboards and
//     the README metric reference cannot drift from the code.
//   - lockcheck: every access to a field marked `//c56:guardedby <mu>`
//     happens with the named sibling mutex held (exclusively for writes),
//     or inside a function marked `//c56:requires <mu>` whose call sites
//     are checked instead — the checklocks discipline, path-sensitively.
//   - noalloc: functions marked `//c56:noalloc` are statically proven free
//     of allocating constructs on their success paths, backing the
//     AllocsPerRun regression tests with whole-body coverage.
//
// The analyzers are built on internal/lint/analysis (a stdlib-only
// re-implementation of the x/tools go/analysis shape) and are exercised by
// analysistest fixtures under testdata/src. cmd/c56-lint runs the suite
// over the module and doubles as a `go vet -vettool`.
package lint

import (
	"go/ast"
	"go/types"

	"code56/internal/lint/analysis"
)

// Suite returns the seven c56-lint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		XorLoop,
		BufPoolPair,
		UnsafeGate,
		CtxFlow,
		MetricName,
		Lockcheck,
		NoAlloc,
	}
}

// Paths of the packages whose APIs the analyzers key on. The analyzers
// match by full import path so that the analysistest fixtures (which stub
// these packages under testdata/src with the same paths) exercise exactly
// the production matching logic.
const (
	xorblkPath    = "code56/internal/xorblk"
	bufpoolPath   = "code56/internal/bufpool"
	parallelPath  = "code56/internal/parallel"
	telemetryPath = "code56/internal/telemetry"
)

// calleeObj resolves the object a call expression invokes: the *types.Func
// for direct calls and method calls, the *types.Var for calls through
// function-valued variables, nil for type conversions and builtins.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// path.name (not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	obj, ok := calleeObj(info, call).(*types.Func)
	if !ok || obj.Name() != name || obj.Pkg() == nil || obj.Pkg().Path() != path {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodOn reports whether call invokes a method named name whose receiver
// is declared in package path on a (possibly pointered) named type called
// recv. recv == "" matches any receiver type in that package.
func methodOn(info *types.Info, call *ast.CallExpr, path, recv, name string) bool {
	obj, ok := calleeObj(info, call).(*types.Func)
	if !ok || obj.Name() != name || obj.Pkg() == nil || obj.Pkg().Path() != path {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if recv == "" {
		return true
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// isByteSliceIndex reports whether e indexes a slice or array whose element
// type is byte (the operand shape of a hand-rolled block-XOR loop).
func isByteSliceIndex(info *types.Info, e ast.Expr) bool {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[idx.X]
	if !ok {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Pointer:
		if arr, ok := t.Elem().Underlying().(*types.Array); ok {
			elem = arr.Elem()
		}
	}
	if elem == nil {
		return false
	}
	basic, ok := elem.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// identObj resolves an identifier expression to its object, unwrapping
// parentheses; nil for non-identifiers.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// mentionsObj reports whether any identifier inside e resolves to obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
