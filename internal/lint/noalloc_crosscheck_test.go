package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestNoallocAnnotationsHaveAllocTests cross-checks the static and
// runtime halves of the zero-allocation contract over every internal
// package: each exported function carrying //c56:noalloc must be
// exercised inside a testing.AllocsPerRun assertion in its package's
// tests, and — the converse — each exported package function exercised
// under AllocsPerRun must carry the annotation. The lint analyzer proves
// the property intraprocedurally; AllocsPerRun observes the whole call
// tree at runtime; each check catches what the other structurally cannot
// (trusted-table optimism vs. unpinned hot paths).
func TestNoallocAnnotationsHaveAllocTests(t *testing.T) {
	root := filepath.Join("..", "..")
	var pkgDirs []string
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			pkgDirs = append(pkgDirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, dir := range pkgDirs {
		annotated, defined, tested, err := scanNoallocPackage(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, name := range sortedNames(annotated) {
			if !tested[name] {
				t.Errorf("%s: exported //c56:noalloc function %s has no AllocsPerRun regression test", dir, name)
			}
		}
		for _, name := range sortedNames(tested) {
			if defined[name] && !annotated[name] {
				t.Errorf("%s: exported function %s is pinned by an AllocsPerRun test but lacks //c56:noalloc", dir, name)
			}
		}
	}
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// scanNoallocPackage parses one package directory (tag-blind: all files,
// all build configurations) and returns three name sets over its exported
// functions and methods: those annotated //c56:noalloc, all defined ones,
// and those called inside testing.AllocsPerRun closures in the package's
// test files.
func scanNoallocPackage(dir string) (annotated, defined, tested map[string]bool, err error) {
	annotated, defined, tested = map[string]bool{}, map[string]bool{}, map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			collectAllocTested(f, tested)
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !exportedReceiver(fd) {
				continue
			}
			defined[fd.Name.Name] = true
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//c56:noalloc" {
						annotated[fd.Name.Name] = true
					}
				}
			}
		}
	}
	return annotated, defined, tested, nil
}

// exportedReceiver reports whether fd is a plain function or a method on
// an exported type (methods on unexported types are not part of the
// package's exported API).
func exportedReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	typ := fd.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}

// collectAllocTested adds to `tested` every exported name called inside
// the closures a test function hands to testing.AllocsPerRun. Two shapes
// are recognized: a function literal passed directly, and a variable
// argument (the table-of-closures idiom), for which every function
// literal in the enclosing test function is scanned instead.
func collectAllocTested(f *ast.File, tested map[string]bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var scanWholeDecl bool
		var lits []*ast.FuncLit
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AllocsPerRun" || len(call.Args) != 2 {
				return true
			}
			if lit, ok := call.Args[1].(*ast.FuncLit); ok {
				lits = append(lits, lit)
			} else {
				scanWholeDecl = true
			}
			return true
		})
		if scanWholeDecl {
			lits = lits[:0]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
				return true
			})
		}
		for _, lit := range lits {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.IsExported() {
						tested[fun.Name] = true
					}
				case *ast.SelectorExpr:
					if fun.Sel.IsExported() {
						tested[fun.Sel.Name] = true
					}
				}
				return true
			})
		}
	}
}
