package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := &Analyzer{Name: "a", Doc: "doc", Run: func(*Pass) error { return nil }}
	if err := Validate([]*Analyzer{ok}); err != nil {
		t.Fatalf("valid analyzer rejected: %v", err)
	}
	bads := []struct {
		name string
		as   []*Analyzer
	}{
		{"nil analyzer", []*Analyzer{nil}},
		{"empty name", []*Analyzer{{Doc: "d", Run: ok.Run}}},
		{"no run", []*Analyzer{{Name: "x", Doc: "d"}}},
		{"no doc", []*Analyzer{{Name: "x", Run: ok.Run}}},
		{"duplicate", []*Analyzer{ok, {Name: "a", Doc: "d", Run: ok.Run}}},
	}
	for _, tc := range bads {
		if err := Validate(tc.as); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSuppressions(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow xorloop benchmark baseline
	_ = 2 //lint:allow bufpoolpair
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed, bad := Suppressions(fset, []*ast.File{f})
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed suppression") {
		t.Fatalf("want one malformed-suppression diagnostic, got %v", bad)
	}
	if len(allowed) != 1 {
		t.Fatalf("want one suppression, got %d", len(allowed))
	}

	// A diagnostic on the suppressed line for the named analyzer is
	// filtered; other analyzers and other lines are not.
	file := fset.File(f.Pos())
	pos4, pos6 := file.LineStart(4), file.LineStart(6)
	if !Suppressed(fset, allowed, "xorloop", Diagnostic{Pos: pos4, Message: "m"}) {
		t.Error("xorloop diagnostic on the allow line not suppressed")
	}
	if Suppressed(fset, allowed, "ctxflow", Diagnostic{Pos: pos4, Message: "m"}) {
		t.Error("other analyzer suppressed by a xorloop directive")
	}
	if Suppressed(fset, allowed, "xorloop", Diagnostic{Pos: pos6, Message: "m"}) {
		t.Error("unrelated line suppressed")
	}
}
