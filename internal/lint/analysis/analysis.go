// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer bundles a name, a
// doc string and a Run function; a Pass hands Run one type-checked package
// and a Report sink for diagnostics.
//
// The container this repository builds in has no module proxy access, so
// vendoring x/tools is not an option; this package keeps the same shape as
// the upstream API (Analyzer, Pass, Diagnostic, Reportf) at a fraction of
// the surface, so the analyzers in internal/lint would port to the real
// framework by changing one import line. Facts, SSA and the Requires graph
// are deliberately absent — the five c56-lint analyzers are syntactic and
// type-based, and cross-package state (metricname's duplicate registry) is
// handled by running the whole module in one process.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Unlike the x/tools original there is
// no Requires/ResultOf plumbing: every analyzer here is self-contained.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// suppression directives. It must be a valid identifier.
	Name string

	// Doc is the analyzer's one-paragraph documentation, shown by
	// `c56-lint help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings through
	// pass.Report/Reportf and returns an error only for internal failures
	// (an error aborts the whole lint run, it is not a finding).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file/line/column positions.
	Fset *token.FileSet

	// Files are the parsed source files of the package under analysis
	// (comments included). The driver analyzes the files `go list` selects
	// for the active build configuration, so _test.go files and files
	// excluded by build tags are not present.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's expression, definition, use and
	// selection maps for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs a sink that
	// applies //lint:allow filtering and accumulates findings.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Validate checks that analyzers are well-formed (non-empty unique names,
// doc strings, Run functions) and returns a descriptive error otherwise.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		switch {
		case a == nil:
			return fmt.Errorf("analysis: nil analyzer")
		case a.Name == "":
			return fmt.Errorf("analysis: analyzer with empty name")
		case a.Run == nil:
			return fmt.Errorf("analysis: analyzer %s has no Run function", a.Name)
		case a.Doc == "":
			return fmt.Errorf("analysis: analyzer %s has no Doc", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// AllowDirective is the comment prefix that suppresses one analyzer's
// diagnostics on the commented line: `//lint:allow <name> <reason>`. The
// reason is mandatory — a suppression without a recorded justification is
// itself a finding (reported by the driver as analyzer "lint").
const AllowDirective = "//lint:allow"

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file string
	line int
	name string
}

// Suppressions scans the files' comments for //lint:allow directives and
// returns the suppression set plus a diagnostic for every malformed
// directive (unknown analyzer names are checked by the caller; here only
// the "name and reason present" shape is enforced).
func Suppressions(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, []Diagnostic) {
	allowed := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed suppression: want `//lint:allow <analyzer> <reason>`",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				allowed[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return allowed, bad
}

// Suppressed reports whether d, produced by the named analyzer, is covered
// by a //lint:allow directive on its line.
func Suppressed(fset *token.FileSet, allowed map[allowKey]bool, name string, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return allowed[allowKey{pos.Filename, pos.Line, name}]
}

// Allow is one well-formed //lint:allow directive: the analyzer it
// silences and the recorded justification. The audit mode (`c56-lint
// -audit-allows`) cross-references these against live diagnostics.
type Allow struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
}

// Allows returns every well-formed //lint:allow directive in the files.
// Malformed directives (missing analyzer or reason) are skipped here —
// the ordinary lint run already reports them as findings.
func Allows(files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, AllowDirective))
				if len(fields) < 2 {
					continue
				}
				out = append(out, Allow{
					Pos:      c.Pos(),
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}
