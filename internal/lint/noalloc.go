package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"code56/internal/lint/analysis"
)

// NoAlloc statically proves `//c56:noalloc` functions free of allocating
// constructs, so the zero-alloc contract behind the XOR hot paths (and the
// AllocsPerRun regression tests that spot-check it at runtime) is enforced
// on every path, not just the ones tests execute.
//
// A function annotated `//c56:noalloc` in its doc comment must not reach,
// intraprocedurally, any of: make/new, append (may grow), map writes,
// slice/map composite literals, &T{} literals, string concatenation,
// string<->[]byte conversions, interface boxing (arguments to interface
// parameters including fmt-style variadics, interface assignments, returns
// and conversions), variable-capturing closures that escape, or go
// statements. Calls must resolve to one of:
//
//   - a same-package function that is itself annotated //c56:noalloc (the
//     proof composes: every annotated body is checked independently);
//   - a same-package function with no body (an assembly kernel — leaf code
//     that cannot invoke the Go allocator; see internal/xorblk's stubs);
//   - an entry in the noallocTrusted table below: stdlib leaves and the
//     repository's own cross-package hot-path APIs. Export data carries no
//     comments, so cross-package annotations are invisible; the table is
//     the explicit, reviewable substitute, and entries naming the package
//     under analysis are cross-checked against its real annotations so the
//     table cannot rot.
//
// Two failure-path exemptions keep the contract about the steady state the
// AllocsPerRun tests measure: arguments to panic may allocate (the process
// is dying), and any nested block that concludes by returning a non-nil
// error expression (or panicking) is a failure path — `if err != nil {
// return fmt.Errorf(...) }` never executes on the success path. The
// function's top-level statement list gets no such exemption.
//
// Designed cold-path allocations (a pool miss minting a fresh buffer) are
// suppressed with `//lint:allow noalloc <reason>`, which keeps them
// visible to `c56-lint -audit-allows`.
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "prove //c56:noalloc functions reach no allocating construct " +
		"(make/new/append, map writes, interface boxing, closure capture, " +
		"string concat) through their bodies and annotated callees",
	Run: runNoAlloc,
}

// noallocDirective marks a function (or assembly stub) as statically
// allocation-free on its success paths.
const noallocDirective = "//c56:noalloc"

// noallocTrusted lists call targets outside the package under analysis
// that are known not to allocate on their success paths. Keys are
// "pkgpath.Func" for package functions and "pkgpath.Type.Method" for
// methods (pointer receivers normalized, interface methods included —
// an interface entry asserts every implementation wired into a hot path
// honors the contract, e.g. vdisk.BlockStore over MemStore and the
// filestore). Entries under a code56 path are verified against the real
// annotations whenever that package is analyzed.
var noallocTrusted = map[string]bool{
	// sync: lock/unlock park without user-visible allocation; Pool.Get and
	// Put recycle (the miss path runs New, which the caller suppresses).
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
	"sync.Pool.Get":        true,
	"sync.Pool.Put":        true,

	// encoding/binary: the fixed-endian word accessors are inlined
	// load/stores.
	"encoding/binary.littleEndian.Uint16":    true,
	"encoding/binary.littleEndian.Uint32":    true,
	"encoding/binary.littleEndian.Uint64":    true,
	"encoding/binary.littleEndian.PutUint16": true,
	"encoding/binary.littleEndian.PutUint32": true,
	"encoding/binary.littleEndian.PutUint64": true,
	"encoding/binary.bigEndian.Uint64":       true,
	"encoding/binary.bigEndian.PutUint64":    true,

	// time: reading and differencing clocks.
	"time.Now":                  true,
	"time.Since":                true,
	"time.Until":                true,
	"time.Sleep":                true,
	"time.Time.Sub":             true,
	"time.Time.Unix":            true,
	"time.Time.UnixNano":        true,
	"time.Duration.Seconds":     true,
	"time.Duration.Nanoseconds": true,

	// errors: inspection only (errors.New allocates and is not here).
	"errors.Is": true,
	"errors.As": true,

	// sort: binary search over a caller-owned slice.
	"sort.SearchFloat64s": true,
	"sort.SearchInts":     true,

	// math/rand: generator state is mutated in place.
	"math/rand.Rand.Float64": true,
	"math/rand.Rand.Intn":    true,
	"math/rand.Rand.Int63":   true,

	// code56 hot-path APIs, cross-checked against their annotations.
	"code56/internal/xorblk.Xor":             true,
	"code56/internal/xorblk.XorBytes":        true,
	"code56/internal/xorblk.XorWords":        true,
	"code56/internal/xorblk.XorInto":         true,
	"code56/internal/xorblk.XorMulti":        true,
	"code56/internal/xorblk.XorMultiRange":   true,
	"code56/internal/xorblk.AccumulateMulti": true,
	"code56/internal/xorblk.IsZero":          true,
	"code56/internal/xorblk.Equal":           true,

	"code56/internal/bufpool.Get":     true,
	"code56/internal/bufpool.GetZero": true,
	"code56/internal/bufpool.Put":     true,

	"code56/internal/telemetry.Counter.Inc":       true,
	"code56/internal/telemetry.Counter.Add":       true,
	"code56/internal/telemetry.Counter.Value":     true,
	"code56/internal/telemetry.Gauge.Set":         true,
	"code56/internal/telemetry.Gauge.Add":         true,
	"code56/internal/telemetry.Gauge.Value":       true,
	"code56/internal/telemetry.Histogram.Observe": true,
	"code56/internal/telemetry.Rate.Add":          true,
	"code56/internal/telemetry.Rate.Inc":          true,

	"code56/internal/layout.Geometry.Index":            true,
	"code56/internal/layout.Geometry.CoordOf":          true,
	"code56/internal/layout.Geometry.Contains":         true,
	"code56/internal/layout.Stripe.Block":              true,
	"code56/internal/layout.Stripe.SetBlock":           true,
	"code56/internal/layout.Stripe.Zero":               true,
	"code56/internal/layout.StripePool.Get":            true,
	"code56/internal/layout.StripePool.Put":            true,
	"code56/internal/layout.Encoder.Encode":            true,
	"code56/internal/layout.Encoder.EncodeInterleaved": true,
	"code56/internal/layout.Encoder.Verify":            true,
	"code56/internal/vdisk.Disk.Read":                  true,
	"code56/internal/vdisk.Disk.Write":                 true,
	"code56/internal/vdisk.Disk.Failed":                true,
	"code56/internal/vdisk.Array.Disk":                 true,
	"code56/internal/vdisk.Array.BlockSize":            true,
	"code56/internal/vdisk.BlockStore.ReadAt":          true,
	"code56/internal/vdisk.BlockStore.WriteAt":         true,
}

// noallocTrustedPkgs are packages trusted wholesale: pure-computation
// leaves with no allocating API at all.
var noallocTrustedPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
	"unsafe":      true,
}

func runNoAlloc(pass *analysis.Pass) error {
	c := &noallocChecker{pass: pass, annotated: map[*types.Func]*ast.FuncDecl{}, bodyless: map[*types.Func]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, dc, found := directiveArgs(fn.Doc, noallocDirective)
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if fn.Body == nil {
				c.bodyless[obj] = true
			}
			if !found {
				continue
			}
			if len(args) != 0 {
				pass.Reportf(dc.Pos(), "malformed annotation: %s takes no arguments", noallocDirective)
				continue
			}
			c.annotated[obj] = fn
		}
	}
	c.checkTrustedTable()
	for obj, fn := range c.annotated {
		if fn.Body == nil {
			continue // assembly stub: the annotation is documentation
		}
		c.checkFunc(obj.Name(), fn.Type, fn.Body)
	}
	return nil
}

type noallocChecker struct {
	pass      *analysis.Pass
	annotated map[*types.Func]*ast.FuncDecl
	bodyless  map[*types.Func]bool
}

// checkTrustedTable verifies that every noallocTrusted entry naming the
// package under analysis corresponds to a real //c56:noalloc annotation,
// so the cross-package table cannot drift from the code.
func (c *noallocChecker) checkTrustedTable() {
	prefix := c.pass.Pkg.Path() + "."
	names := map[string]bool{}
	for obj := range c.annotated {
		names[funcKeyName(obj)] = true
	}
	// Interface-method entries (e.g. BlockStore.ReadAt) assert a contract
	// over implementations, not an annotation on the interface itself.
	ifaces := map[string]bool{}
	for _, name := range c.pass.Pkg.Scope().Names() {
		if tn, ok := c.pass.Pkg.Scope().Lookup(name).(*types.TypeName); ok {
			if types.IsInterface(tn.Type()) {
				ifaces[name] = true
			}
		}
	}
	for key := range noallocTrusted {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		name := strings.TrimPrefix(key, prefix)
		if i := strings.IndexByte(name, '.'); i >= 0 && ifaces[name[:i]] {
			continue
		}
		if !names[name] {
			pos := c.pass.Files[0].Package
			c.pass.Reportf(pos, "noalloc trusted table lists %s, but no function %s in this package carries %s",
				key, name, noallocDirective)
		}
	}
}

// funcKeyName renders obj the way noallocTrusted keys name it, without the
// package path: "Func" or "Type.Method".
func funcKeyName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return obj.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// checkFunc walks one annotated function (or one of its local closures).
func (c *noallocChecker) checkFunc(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
	w := &noallocWalker{c: c, name: name, ftype: ftype, body: body}
	w.localFuncs = w.collectLocalFuncs()
	w.iife = collectIIFEs(body)
	w.checkStmts(body.List, true)
}

// collectIIFEs indexes every immediately-invoked function literal under
// body: `func(){...}()` runs inline, so no closure value escapes.
func collectIIFEs(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// noallocWalker walks one function body.
type noallocWalker struct {
	c     *noallocChecker
	name  string
	ftype *ast.FuncType
	body  *ast.BlockStmt

	// localFuncs are closures bound to a local name that is only ever
	// called: they cannot escape, so the closure value lives on the stack
	// and its body is checked like a nested annotated function.
	localFuncs map[types.Object]*ast.FuncLit

	// iife marks immediately-invoked function literals.
	iife map[*ast.FuncLit]bool
}

func (w *noallocWalker) reportf(pos token.Pos, format string, args ...any) {
	w.c.pass.Reportf(pos, format+" in %s function %s",
		append(args, noallocDirective, w.name)...)
}

// collectLocalFuncs finds `name := func(...) {...}` bindings whose name is
// used exclusively in call position within this body.
func (w *noallocWalker) collectLocalFuncs() map[types.Object]*ast.FuncLit {
	candidates := map[types.Object]*ast.FuncLit{}
	ast.Inspect(w.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := identObj(w.c.pass.TypesInfo, as.Lhs[i]); obj != nil {
				candidates[obj] = lit
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return candidates
	}
	// Discard any candidate used outside call position.
	called := map[types.Object]int{}
	uses := map[types.Object]int{}
	ast.Inspect(w.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := identObj(w.c.pass.TypesInfo, call.Fun); obj != nil {
				if _, isCand := candidates[obj]; isCand {
					called[obj]++
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.c.pass.TypesInfo.Uses[id]; obj != nil {
				if _, isCand := candidates[obj]; isCand {
					uses[obj]++
				}
			}
		}
		return true
	})
	for obj := range candidates {
		if uses[obj] != called[obj] {
			delete(candidates, obj)
		}
	}
	return candidates
}

// coldBlock reports whether stmts is a failure path: it concludes by
// returning an evidently non-nil error (any expression other than the
// literal nil in the trailing error result) or by panicking.
func (w *noallocWalker) coldBlock(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		results := w.ftype.Results
		if results == nil || len(results.List) == 0 {
			return false
		}
		// Locate the trailing result type; it must be error.
		var lastType ast.Expr
		n := 0
		for _, f := range results.List {
			k := len(f.Names)
			if k == 0 {
				k = 1
			}
			n += k
			lastType = f.Type
		}
		tv, ok := w.c.pass.TypesInfo.Types[lastType]
		if !ok || !isErrorType(tv.Type) {
			return false
		}
		if len(last.Results) != n {
			return false // naked return or call spread: not evidently failing
		}
		final := ast.Unparen(last.Results[len(last.Results)-1])
		if tv, ok := w.c.pass.TypesInfo.Types[final]; ok && tv.IsNil() {
			return false
		}
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkStmts walks one statement list. Nested (non-top-level) lists that
// form a failure path are exempt.
func (w *noallocWalker) checkStmts(stmts []ast.Stmt, topLevel bool) {
	if !topLevel && w.coldBlock(stmts) {
		return
	}
	for _, s := range stmts {
		w.checkStmt(s)
	}
}

func (w *noallocWalker) checkStmt(s ast.Stmt) {
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		w.checkStmts(stmt.List, false)
	case *ast.LabeledStmt:
		w.checkStmt(stmt.Stmt)
	case *ast.IfStmt:
		if stmt.Init != nil {
			w.checkStmt(stmt.Init)
		}
		w.checkExprs(stmt.Cond)
		w.checkStmts(stmt.Body.List, false)
		if stmt.Else != nil {
			w.checkStmt(stmt.Else)
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			w.checkStmt(stmt.Init)
		}
		w.checkExprs(stmt.Cond)
		if stmt.Post != nil {
			w.checkStmt(stmt.Post)
		}
		w.checkStmts(stmt.Body.List, false)
	case *ast.RangeStmt:
		w.checkExprs(stmt.X)
		// Ranging over a map or channel is fine; the loop variables are
		// reused. Writes through Key/Value land in checkAssign if present.
		w.checkStmts(stmt.Body.List, false)
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			w.checkStmt(stmt.Init)
		}
		w.checkExprs(stmt.Tag)
		w.checkCaseBodies(stmt.Body)
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			w.checkStmt(stmt.Init)
		}
		w.checkCaseBodies(stmt.Body)
	case *ast.SelectStmt:
		w.checkCaseBodies(stmt.Body)
	case *ast.AssignStmt:
		w.checkAssign(stmt)
	case *ast.GoStmt:
		w.reportf(stmt.Pos(), "go statement starts a goroutine (allocates)")
	case *ast.DeferStmt:
		w.checkExprs(stmt.Call)
	case *ast.ReturnStmt:
		w.checkReturn(stmt)
	case *ast.DeclStmt:
		w.checkDecl(stmt)
	case *ast.IncDecStmt:
		w.checkExprs(stmt.X)
	case *ast.ExprStmt:
		w.checkExprs(stmt.X)
	case *ast.SendStmt:
		w.checkExprs(stmt.Chan)
		w.checkExprs(stmt.Value)
	}
}

func (w *noallocWalker) checkCaseBodies(body *ast.BlockStmt) {
	for _, cl := range body.List {
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.checkExprs(e)
			}
			w.checkStmts(cc.Body, false)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.checkStmt(cc.Comm)
			}
			w.checkStmts(cc.Body, false)
		}
	}
}

// checkAssign handles allocation shapes only visible at the assignment:
// map writes, string concatenation compound assignment, and interface
// boxing of the stored value.
func (w *noallocWalker) checkAssign(stmt *ast.AssignStmt) {
	for _, lhs := range stmt.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if tv, ok := w.c.pass.TypesInfo.Types[idx.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					w.reportf(lhs.Pos(), "map assignment may allocate")
				}
			}
		}
		w.checkExprs(lhs)
	}
	if stmt.Tok == token.ADD_ASSIGN && len(stmt.Lhs) == 1 {
		if tv, ok := w.c.pass.TypesInfo.Types[stmt.Lhs[0]]; ok && isStringType(tv.Type) {
			w.reportf(stmt.Pos(), "string concatenation allocates")
		}
	}
	for i, rhs := range stmt.Rhs {
		w.checkExprs(rhs)
		// Boxing on plain assignment into an interface-typed slot. := infers
		// the concrete type, so only = can box.
		if stmt.Tok == token.ASSIGN && len(stmt.Lhs) == len(stmt.Rhs) {
			if tv, ok := w.c.pass.TypesInfo.Types[stmt.Lhs[i]]; ok {
				w.checkBoxing(tv.Type, rhs, "assignment")
			}
		}
	}
}

func (w *noallocWalker) checkReturn(stmt *ast.ReturnStmt) {
	for _, res := range stmt.Results {
		w.checkExprs(res)
	}
	// Boxing into interface-typed results.
	results := w.ftype.Results
	if results == nil {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		tv, ok := w.c.pass.TypesInfo.Types[f.Type]
		if !ok {
			return
		}
		k := len(f.Names)
		if k == 0 {
			k = 1
		}
		for range k {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(stmt.Results) != len(resultTypes) {
		return
	}
	for i, res := range stmt.Results {
		w.checkBoxing(resultTypes[i], res, "return")
	}
}

func (w *noallocWalker) checkDecl(stmt *ast.DeclStmt) {
	gd, ok := stmt.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			w.checkExprs(v)
			if vs.Type != nil && i < len(vs.Names) {
				if obj := w.c.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
					w.checkBoxing(obj.Type(), v, "assignment")
				}
			}
		}
	}
}

// checkBoxing reports storing a concrete value into an interface-typed
// slot. Pointer-shaped values (pointers, channels, maps, functions,
// unsafe.Pointer) are exempt: they store directly in the interface data
// word without touching the heap — the very property bufpool's *entry
// boxes exploit to keep sync.Pool traffic allocation-free.
func (w *noallocWalker) checkBoxing(target types.Type, val ast.Expr, what string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := w.c.pass.TypesInfo.Types[val]
	if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	w.reportf(val.Pos(), "%s boxes %s into %s (allocates)", what, tv.Type, target)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkExprs inspects one expression tree for allocating constructs.
func (w *noallocWalker) checkExprs(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.checkFuncLit(n)
			return false
		case *ast.CallExpr:
			return w.checkCall(n)
		case *ast.CompositeLit:
			tv, ok := w.c.pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.reportf(n.Pos(), "slice literal allocates")
			case *types.Map:
				w.reportf(n.Pos(), "map literal allocates")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					w.reportf(n.Pos(), "&composite literal allocates")
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := w.c.pass.TypesInfo.Types[n]; ok && isStringType(tv.Type) {
					w.reportf(n.Pos(), "string concatenation allocates")
				}
			}
			return true
		}
		return true
	})
}

// checkFuncLit handles a function literal encountered as a value. A
// literal bound to a local-only-called name or invoked immediately is
// checked like a nested function; anything else that captures variables
// is an escaping closure.
func (w *noallocWalker) checkFuncLit(lit *ast.FuncLit) {
	inner := func() {
		nested := &noallocWalker{c: w.c, name: w.name, ftype: lit.Type, body: lit.Body, iife: w.iife}
		nested.localFuncs = nested.collectLocalFuncs()
		for obj, l := range w.localFuncs {
			nested.localFuncs[obj] = l
		}
		nested.checkStmts(lit.Body.List, true)
	}
	if w.iife[lit] {
		inner()
		return
	}
	for _, l := range w.localFuncs {
		if l == lit {
			inner()
			return
		}
	}
	if w.capturesOuter(lit) {
		w.reportf(lit.Pos(), "closure captures variables (allocates)")
	}
	// A capture-free literal is a static function value; the call sites
	// that receive it are responsible for what it does.
	inner()
}

// capturesOuter reports whether lit references variables declared outside
// it (other than package-level ones).
func (w *noallocWalker) capturesOuter(lit *ast.FuncLit) bool {
	scopeOf := func(obj types.Object) bool {
		if obj == nil || obj.Parent() == nil {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		if obj.Parent() == w.c.pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if scopeOf(w.c.pass.TypesInfo.Uses[id]) {
				captured = true
			}
		}
		return !captured
	})
	return captured
}

// checkCall validates one call: builtins, conversions, and callee
// resolution. Returns whether Inspect should descend into the arguments.
func (w *noallocWalker) checkCall(call *ast.CallExpr) bool {
	// Type conversion?
	if tv, ok := w.c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			if atv, ok := w.c.pass.TypesInfo.Types[call.Args[0]]; ok && atv.Type != nil {
				switch {
				case isStringType(target) && isByteOrRuneSlice(atv.Type),
					isByteOrRuneSlice(target) && isStringType(atv.Type):
					w.reportf(call.Pos(), "conversion between string and byte/rune slice allocates")
				default:
					w.checkBoxing(target, call.Args[0], "conversion")
				}
			}
		}
		return true
	}

	obj := calleeObj(w.c.pass.TypesInfo, call)
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			w.reportf(call.Pos(), "make allocates")
		case "new":
			w.reportf(call.Pos(), "new allocates")
		case "append":
			w.reportf(call.Pos(), "append may grow its backing array (allocates)")
		case "panic":
			return false // failure path: the argument may allocate
		}
		return true
	case *types.Func:
		w.checkCalleeFunc(call, obj)
		w.checkArgBoxing(call, obj)
		return true
	case *types.Var:
		// A call through a function value: local-only-called closures were
		// validated at their definition; anything else is dynamic dispatch
		// the checker cannot see through.
		if _, ok := w.localFuncs[obj]; ok {
			return true
		}
		w.reportf(call.Pos(), "dynamic call through %s cannot be proven alloc-free", obj.Name())
		return true
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return true // handled by checkFuncLit via the surrounding Inspect
	}
	return true
}

// checkCalleeFunc validates the call target is alloc-free by one of the
// accepted proofs.
func (w *noallocWalker) checkCalleeFunc(call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() == nil {
		return // error.Error and friends from the universe scope
	}
	// The trusted table is consulted before the same-package annotation
	// check: interface methods (e.g. vdisk.BlockStore.ReadAt called from
	// inside vdisk itself) have no FuncDecl to annotate, so their contract
	// lives in the table even for same-package calls.
	if noallocTrustedPkgs[fn.Pkg().Path()] || noallocTrusted[fn.Pkg().Path()+"."+funcKeyName(fn)] {
		return
	}
	if fn.Pkg() == w.c.pass.Pkg {
		if _, ok := w.c.annotated[fn]; ok {
			return
		}
		if w.c.bodyless[fn] {
			return // assembly kernel: leaf code without allocator access
		}
		w.reportf(call.Pos(), "calls %s, which is not marked %s", fn.Name(), noallocDirective)
		return
	}
	w.reportf(call.Pos(), "calls %s.%s, which is not in the noalloc trusted set",
		fn.Pkg().Path(), funcKeyName(fn))
}

// checkArgBoxing flags concrete arguments passed to interface parameters,
// including fmt-style variadics.
func (w *noallocWalker) checkArgBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // passing the slice through; nothing boxes
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		w.checkBoxing(pt, arg, "argument")
	}
}
