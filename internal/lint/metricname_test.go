package lint

import (
	"testing"

	"code56/internal/lint/analysistest"
)

// TestMetricName covers constant-ness, the pkg.snake_case convention, the
// package-prefix rule, the PerInstance seam's prefix/suffix shapes, and
// cross-package duplicate detection (two packages named metricname at
// different import paths registering the same name).
func TestMetricName(t *testing.T) {
	ResetMetricState()
	t.Cleanup(ResetMetricState)
	analysistest.Run(t, analysistest.TestData(), MetricName,
		"metricname", "dup/metricname", "obs", "trace")
}
