package lint

import (
	"testing"

	"code56/internal/lint/analysistest"
)

// TestXorLoop covers the hand-rolled byte/word loop shapes, the bitset and
// kernel-call negatives, the //lint:allow suppression, and the xorblk
// package's own exemption.
func TestXorLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), XorLoop,
		"xorloop", "code56/internal/xorblk")
}
