package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"code56/internal/lint/analysis"
)

// XorLoop flags hand-rolled XOR loops over byte blocks outside
// internal/xorblk.
//
// Two shapes are recognized inside any for/range loop:
//
//   - the byte path: dst[i] ^= src[i], or dst[i] = a[i] ^ b[i], where the
//     indexed operands are byte slices/arrays;
//   - the word path: a binary.*.PutUintN call whose value argument contains
//     an XOR (the encoding/binary idiom xorblk's own word kernels use).
//
// Everything the paper counts — the optimal XOR tallies reproduced by the
// analysis package and the raid engines' telemetry — and everything PR 4's
// zero-allocation work guarantees flows through xorblk's kernels. A
// hand-rolled loop elsewhere is invisible to both: it escapes the XOR
// accounting and silently takes the slow byte path the kernels exist to
// avoid. Bitset algebra over non-byte slices (layout's Gaussian
// elimination over []uint64) is deliberately out of scope.
//
// The analyzer also reports calls to xorblk's exported reference kernels
// (XorBytes, XorWords) outside xorblk itself and outside _test.go files:
// they exist for benchmarks and equivalence tests to compare tiers
// against, and a library call site pins a block operation to a slow tier,
// silently bypassing the runtime SIMD dispatch. Benchmarks enumerate
// xorblk.Tiers() instead, which includes both reference tiers.
var XorLoop = &analysis.Analyzer{
	Name: "xorloop",
	Doc: "flag hand-rolled byte/word XOR loops and reference-kernel calls " +
		"(XorBytes/XorWords) outside internal/xorblk; block XOR must go " +
		"through the dispatched xorblk kernels (Xor, XorInto, XorMulti)",
	Run: runXorLoop,
}

func runXorLoop(pass *analysis.Pass) error {
	if pass.Pkg.Path() == xorblkPath {
		return nil
	}
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if d := refKernelUse(pass, sel); d != nil {
					pass.Report(*d)
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				switch stmt := m.(type) {
				case *ast.AssignStmt:
					if d := xorAssign(pass, stmt); d != nil {
						pass.Report(*d)
					}
				case *ast.CallExpr:
					if d := xorPutCall(pass, stmt); d != nil {
						pass.Report(*d)
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}

// xorAssign matches the byte-path shapes dst[i] ^= src[i] and
// dst[i] = a[i] ^ b[i] over byte slices.
func xorAssign(pass *analysis.Pass, stmt *ast.AssignStmt) *analysis.Diagnostic {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	if !isByteSliceIndex(pass.TypesInfo, stmt.Lhs[0]) {
		return nil
	}
	rhs := stmt.Rhs[0]
	switch stmt.Tok {
	case token.XOR_ASSIGN: // dst[i] ^= <expr reading another block>
		if !containsByteSliceIndex(pass, rhs) {
			return nil
		}
	case token.ASSIGN: // dst[i] = a[i] ^ b[i]
		bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
		if !ok || bin.Op != token.XOR {
			return nil
		}
		if !containsByteSliceIndex(pass, bin.X) || !containsByteSliceIndex(pass, bin.Y) {
			return nil
		}
	default:
		return nil
	}
	return &analysis.Diagnostic{
		Pos: stmt.Pos(),
		Message: "hand-rolled byte XOR loop; use code56/internal/xorblk " +
			"(Xor/XorInto/XorMulti) so XOR counts and the wide kernels stay in effect",
	}
}

// containsByteSliceIndex reports whether e contains an index into a byte
// slice/array anywhere in its subtree.
func containsByteSliceIndex(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && isByteSliceIndex(pass.TypesInfo, ex) {
			found = true
		}
		return !found
	})
	return found
}

// xorPutCall matches the word-path shape: binary.LittleEndian.PutUint64
// (or any ByteOrder PutUintN) fed an expression containing an XOR.
func xorPutCall(pass *analysis.Pass, call *ast.CallExpr) *analysis.Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "PutUint") {
		return nil
	}
	fn := calleeObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return nil
	}
	for _, arg := range call.Args {
		if containsXor(arg) {
			return &analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "hand-rolled word XOR loop (encoding/binary PutUint of an XOR); " +
					"use code56/internal/xorblk kernels instead",
			}
		}
	}
	return nil
}

// refKernelUse matches any use — call or function-value reference — of
// xorblk's reference kernels (XorBytes, XorWords), sanctioned only inside
// xorblk and in test files. References count too: storing the function in
// a table pins later calls to the slow tier just as surely as calling it.
func refKernelUse(pass *analysis.Pass, sel *ast.SelectorExpr) *analysis.Diagnostic {
	if sel.Sel.Name != "XorBytes" && sel.Sel.Name != "XorWords" {
		return nil
	}
	obj := identObj(pass.TypesInfo, sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != xorblkPath {
		return nil
	}
	return &analysis.Diagnostic{
		Pos: sel.Pos(),
		Message: "xorblk." + sel.Sel.Name + " is a reference kernel for tests and benchmarks; " +
			"call Xor/XorInto/XorMulti (runtime-dispatched) or enumerate xorblk.Tiers() instead",
	}
}

// containsXor reports whether e contains a ^ binary operation.
func containsXor(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if bin, ok := n.(*ast.BinaryExpr); ok && bin.Op == token.XOR {
			found = true
		}
		return !found
	})
	return found
}
