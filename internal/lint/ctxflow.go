package lint

import (
	"go/ast"
	"go/types"

	"code56/internal/lint/analysis"
)

// CtxFlow enforces context discipline around the parallel stripe engine.
//
// Cancellation in this repository stops at stripe boundaries precisely
// because every bulk loop funnels through parallel.ForEach/ForEachBatch/
// XorMulti with the caller's ctx. A *Context entry point that manufactures
// its own context — or threads the wrong one — silently severs
// cancellation for everything beneath it: a paused or cancelled migration
// would keep encoding stripes. Two rules:
//
//   - library code (anything but package main) must not call context.TODO,
//     and may call context.Background only in the recognized
//     serial-compat-wrapper shape: a function with no context.Context
//     parameter passing Background() directly as a call argument (e.g.
//     `return a.RebuildContext(context.Background(), …)`). Calling
//     Background inside a function that already has a ctx in scope is
//     reported, as is storing a manufactured context in a variable or
//     field.
//
//   - every call to parallel.ForEach, ForEachBatch or XorMulti made inside
//     a function with a context.Context parameter (its own or a captured
//     one) must thread that parameter — directly, or via a value derived
//     from it such as `cctx, cancel := context.WithCancel(ctx)`. Passing a
//     fresh Background()/TODO() or an unrelated context is reported.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require context-aware entry points to thread their ctx into the " +
		"parallel engine, and forbid manufactured contexts in library code",
	Run: runCtxFlow,
}

// parallelCtxFuncs are the parallel-engine entry points whose first
// parameter is a context.
var parallelCtxFuncs = map[string]bool{
	"ForEach":      true,
	"ForEachBatch": true,
	"XorMulti":     true,
}

func runCtxFlow(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(pass, fd.Type, fd.Body, nil, isMain)
			}
		}
	}
	return nil
}

// funcCtx tracks, for one function (or literal), the context.Context
// values in scope: its parameters, those captured from enclosing
// functions, and locals derived from either.
type funcCtx struct {
	pass    *analysis.Pass
	params  map[types.Object]bool
	derived map[types.Object]bool
}

func newFuncCtx(pass *analysis.Pass, ft *ast.FuncType, parent *funcCtx) *funcCtx {
	fc := &funcCtx{pass: pass, params: map[types.Object]bool{}, derived: map[types.Object]bool{}}
	if parent != nil {
		for o := range parent.params {
			fc.params[o] = true
		}
		for o := range parent.derived {
			fc.derived[o] = true
		}
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) {
					fc.params[obj] = true
				}
			}
		}
	}
	return fc
}

// hasCtx reports whether any context parameter is in scope.
func (fc *funcCtx) hasCtx() bool { return len(fc.params) > 0 }

// connected reports whether e denotes a context parameter in scope, a
// local derived from one, or an inline derivation (a call that receives a
// connected context among its arguments, e.g. context.WithTimeout(ctx, d)).
func (fc *funcCtx) connected(e ast.Expr) bool {
	e = ast.Unparen(e)
	if obj := identObj(fc.pass.TypesInfo, e); obj != nil {
		return fc.params[obj] || fc.derived[obj]
	}
	if call, ok := e.(*ast.CallExpr); ok {
		for _, arg := range call.Args {
			if fc.connected(arg) {
				return true
			}
		}
	}
	return false
}

// checkCtxFunc analyzes one function body with its context scope, then
// recurses into nested literals with the scope chained.
func checkCtxFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, parent *funcCtx, isMain bool) {
	fc := newFuncCtx(pass, ft, parent)
	sanctioned := map[*ast.CallExpr]bool{} // Background/TODO passed directly as a call argument
	reported := map[*ast.CallExpr]bool{}   // already flagged by the parallel-threading rule

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pass, node.Type, node.Body, fc, isMain)
			return false
		case *ast.AssignStmt:
			// Track locals derived from a connected context:
			// cctx, cancel := context.WithTimeout(ctx, d).
			for i, rhs := range node.Rhs {
				if !fc.connected(rhs) {
					continue
				}
				lhs := node.Lhs
				if len(node.Lhs) == len(node.Rhs) {
					lhs = node.Lhs[i : i+1]
				}
				for _, l := range lhs {
					if obj := identObj(pass.TypesInfo, l); obj != nil && isContextType(obj.Type()) {
						fc.derived[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range node.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isManufactured(pass, inner) {
					sanctioned[inner] = true
				}
			}
			checkParallelCall(pass, node, fc, reported)
		}
		return true
	})

	// Second pass: judge every Background/TODO call against the scope and
	// the sanctioned set built above.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isManufactured(pass, call) || reported[call] {
			return true
		}
		switch {
		case isMain:
			// Binaries own their root context.
		case isPkgFunc(pass.TypesInfo, call, "context", "TODO"):
			pass.Reportf(call.Pos(), "library code must not call context.TODO; accept a ctx parameter or use the serial-wrapper shape with context.Background")
		case fc.hasCtx():
			pass.Reportf(call.Pos(), "context.Background() inside a function that already has a ctx in scope; thread the ctx instead of manufacturing a new root")
		case !sanctioned[call]:
			pass.Reportf(call.Pos(), "context.Background() stored instead of passed; library code may only use Background directly as an argument to a context-aware call (serial-wrapper shape)")
		}
		return true
	})
}

// isManufactured reports whether call is context.Background() or
// context.TODO().
func isManufactured(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass.TypesInfo, call, "context", "Background") ||
		isPkgFunc(pass.TypesInfo, call, "context", "TODO")
}

// checkParallelCall verifies that parallel engine calls thread a connected
// context as their first argument.
func checkParallelCall(pass *analysis.Pass, call *ast.CallExpr, fc *funcCtx, reported map[*ast.CallExpr]bool) {
	obj, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != parallelPath || !parallelCtxFuncs[obj.Name()] {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	first := ast.Unparen(call.Args[0])
	if inner, ok := first.(*ast.CallExpr); ok && isManufactured(pass, inner) {
		if fc.hasCtx() || pass.Pkg.Name() != "main" {
			pass.Reportf(first.Pos(), "parallel.%s called with a manufactured context; thread the caller's ctx so cancellation reaches the stripe loop", obj.Name())
			reported[inner] = true
		}
		return
	}
	if fc.hasCtx() && !fc.connected(first) {
		pass.Reportf(call.Args[0].Pos(), "parallel.%s does not thread this function's ctx; cancellation will not reach the stripe loop", obj.Name())
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
