// Fixture for the lockcheck analyzer: guarded-by access checking, lock
// modes, path sensitivity, requires propagation, and annotation
// validation. Every `// want` comment pins one diagnostic.
package lockcheck

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int //c56:guardedby mu
	name string
}

func readUnlocked(c *counter) int {
	return c.n // want `n read without holding mu`
}

func writeUnlocked(c *counter) {
	c.n = 1 // want `n written without holding mu`
}

func incUnlocked(c *counter) {
	c.n++ // want `n written without holding mu`
}

func unguardedOK(c *counter) string {
	return c.name // name carries no annotation
}

func lockedOK(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func explicitUnlock(c *counter) {
	c.mu.Lock()
	c.n = 7
	c.mu.Unlock()
	c.n = 8 // want `n written without holding mu`
}

func earlyReturnUnderDefer(c *counter, stop bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stop {
		return c.n // defer holds the lock to every exit
	}
	c.n++
	return c.n
}

func suppressed(c *counter) int {
	return c.n //lint:allow lockcheck cold stats path, torn reads acceptable
}

// instance precision: a's lock never vouches for b's fields.
func wrongInstance(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	b.n++ // want `n written without holding mu`
}

// branch join: the lock survives only when every live arm holds it.
func branchJoin(c *counter, p bool) {
	if p {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++ // both arms locked
	c.mu.Unlock()
}

func branchDrop(c *counter, p bool) {
	c.mu.Lock()
	if p {
		c.mu.Unlock()
	}
	c.n++ // want `n written without holding mu`
}

func branchTerminates(c *counter, p bool) {
	c.mu.Lock()
	if p {
		c.mu.Unlock()
		return
	}
	c.n++ // the unlocking arm returned; this path still holds mu
	c.mu.Unlock()
}

// loop back edge: iteration two enters with whatever the bottom of the
// body (or a continue) guarantees.
func loopRelockOK(c *counter) {
	c.mu.Lock()
	for i := 0; i < 8; i++ {
		c.n++ // re-locked at the bottom, so every iteration holds mu
		c.mu.Unlock()
		c.mu.Lock()
	}
	c.mu.Unlock()
}

func loopDrop(c *counter) {
	c.mu.Lock()
	for i := 0; i < 8; i++ {
		c.n++ // want `n written without holding mu`
		c.mu.Unlock()
	}
}

// break carries its held set to the loop exit — the worker-loop shape:
// acquire inside `for {}`, leave via break while holding.
func breakHolding(c *counter) {
	for {
		c.mu.Lock()
		if c.n > 3 {
			break
		}
		c.mu.Unlock()
	}
	c.n = 0 // held: the only way out of the loop is the locked break
	c.mu.Unlock()
}

func continueUnlocked(c *counter) {
	for i := 0; i < 8; i++ {
		c.mu.Lock()
		if c.n == 1 {
			c.mu.Unlock()
			continue
		}
		c.n++ // this path still holds mu
		c.mu.Unlock()
	}
}

// switch: break leaves the switch with the current state.
func switchBreak(c *counter, k int) {
	c.mu.Lock()
	switch k {
	case 0:
		c.n++
	case 1:
		break
	default:
		c.n = k
	}
	c.n++ // every arm (and the break) kept the lock
	c.mu.Unlock()
}

// closures assume nothing about the creator's locks.
func closureUnlocked(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want `n written without holding mu`
	}
}

func closureLocksItself(c *counter) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// constructors: locals freshly built in this body are unpublished, so
// guarded fields may be initialized without the lock.
func newCounter(n int) *counter {
	c := &counter{}
	c.n = n
	return c
}

func newCounterVar(n int) counter {
	var c counter
	c.n = n
	return c
}

// rebinding ends the exemption.
func rebound(global *counter) {
	c := &counter{}
	c.n = 1
	c = global
	c.n = 2 // want `n written without holding mu`
}

// requires: the callee body runs with the lock held; call sites must hold
// it exclusively.

//c56:requires mu
func (c *counter) bumpLocked() {
	c.n++
}

//c56:requires mu
func (c *counter) doubleBumpLocked() {
	c.bumpLocked() // transitively satisfied by this function's own requires
	c.bumpLocked()
}

func callsHelperLocked(c *counter) {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func callsHelperUnlocked(c *counter) {
	c.bumpLocked() // want `call to bumpLocked requires holding mu exclusively`
}

// rwcounter exercises the RWMutex modes: reads accept RLock, writes need
// the exclusive lock.
type rwcounter struct {
	mu sync.RWMutex
	m  map[string]int //c56:guardedby mu
}

func rlockRead(r *rwcounter, k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func rlockWrite(r *rwcounter, k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = 1 // want `m written while mu is held only for reading`
}

// the double-checked RWMutex upgrade idiom: read under RLock, re-check
// and write under Lock.
func doubleChecked(r *rwcounter, k string) int {
	r.mu.RLock()
	v, ok := r.m[k]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[k]; ok {
		return v
	}
	r.m[k] = 42
	return 42
}

func afterRUnlock(r *rwcounter, k string) int {
	r.mu.RLock()
	r.mu.RUnlock()
	return r.m[k] // want `m read without holding mu`
}

// nested instances: the chain to the field names the chain to its guard.
type inner struct {
	mu sync.Mutex
	v  int //c56:guardedby mu
}

type outer struct {
	a inner
	b inner
}

func nestedOK(o *outer) {
	o.a.mu.Lock()
	o.a.v++
	o.a.mu.Unlock()
}

func nestedWrongSibling(o *outer) {
	o.a.mu.Lock()
	defer o.a.mu.Unlock()
	o.b.v++ // want `b\.v written without holding b\.mu`
}

// waiter exercises cond.Wait, which releases and reacquires the lock
// atomically — lock-preserving from the checker's view.
type waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	busy bool //c56:guardedby mu
}

func waitLoop(w *waiter) {
	w.mu.Lock()
	for w.busy {
		w.cond.Wait()
	}
	w.busy = true
	w.mu.Unlock()
}

// annotation validation.
type badGuard struct {
	mu sync.Mutex
	a  int        //c56:guardedby lock // want `no sibling sync.Mutex or sync.RWMutex field named "lock"`
	b  sync.Mutex //c56:guardedby b // want `a mutex cannot guard itself`
	c  int        //c56:guardedby // want `malformed annotation`
}

//c56:requires mu // want `requires a method with a named struct receiver`
func notAMethod() {}

type hasNoMutex struct {
	n int
}

//c56:requires mu // want `receiver has no sync.Mutex or sync.RWMutex field named "mu"`
func (h *hasNoMutex) m() {}
