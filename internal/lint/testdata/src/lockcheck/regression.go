// Regression fixture: the PR 3 heal-vs-write clobber shape.
//
// The online migrator repairs a block it failed to read (readOrRepair) by
// reconstructing the data and rewriting it. The shipped bug: the rewrite
// used block contents read *before* taking writeMu, so an application
// write that landed in between was silently clobbered by the stale
// reconstruction. The fix re-reads and re-checks under writeMu before
// rewriting. With the staged block annotated as guarded by writeMu,
// lockcheck flags the racy shape mechanically: healRacy stages the
// reconstruction before acquiring the lock.
package lockcheck

import "sync"

type healer struct {
	writeMu sync.Mutex
	// staged is the reconstruction about to be rewritten; it must only be
	// produced and consumed under writeMu, or a concurrent application
	// write between the stale read and the rewrite is lost.
	staged []byte //c56:guardedby writeMu
	dirty  bool   //c56:guardedby writeMu
}

func reconstruct(into []byte) {}

// healRacy is the PR 3 bug: the reconstruction is staged from a read taken
// before writeMu, so the rewrite clobbers any write that raced in.
func (h *healer) healRacy() {
	reconstruct(h.staged) // want `staged read without holding writeMu`
	h.dirty = true        // want `dirty written without holding writeMu`
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	h.flushLocked()
}

// healSafe is the negative twin — the fixed shape: take writeMu first,
// re-check, and reconstruct under the lock so the rewrite and any racing
// application write serialize.
func (h *healer) healSafe() {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	if !h.dirty {
		return // re-check under the lock: someone else healed it first
	}
	reconstruct(h.staged)
	h.dirty = false
	h.flushLocked()
}

//c56:requires writeMu
func (h *healer) flushLocked() {
	h.staged = h.staged[:0]
}
