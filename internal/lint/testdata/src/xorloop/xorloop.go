// Package xorloop exercises the xorloop analyzer: hand-rolled XOR loops
// over byte blocks outside internal/xorblk must be reported, bitset
// algebra and the sanctioned kernel calls must not.
package xorloop

import (
	"encoding/binary"

	"code56/internal/xorblk"
)

// xorAssignOp is the classic hand-rolled parity fold.
func xorAssignOp(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i] // want `hand-rolled byte XOR loop`
	}
}

// xorTriple writes a^b elementwise through a counted loop.
func xorTriple(dst, a, b []byte) {
	for i := 0; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i] // want `hand-rolled byte XOR loop`
	}
}

// xorWord is the word-at-a-time variant through encoding/binary, the idiom
// xorblk's own word kernels use.
func xorWord(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:])) // want `hand-rolled word XOR loop`
	}
}

// viaKernel is the sanctioned path; nothing to report.
func viaKernel(dst, a, b []byte) {
	xorblk.Xor(dst, a)
	xorblk.XorInto(dst, a, b)
}

// bitsetFold folds []uint64 bitsets (layout's Gaussian-elimination shape);
// non-byte element types are deliberately out of scope.
func bitsetFold(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// singleXor XORs one byte outside any loop; only loops are flagged.
func singleXor(dst, src []byte) {
	dst[0] ^= src[0]
}

// plainCopy has a byte loop with no XOR; not flagged.
func plainCopy(dst, src []byte) {
	for i := range src {
		dst[i] = src[i]
	}
}

// suppressed records a deliberate exception with the mandatory reason; the
// //lint:allow directive swallows the diagnostic.
func suppressed(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i] //lint:allow xorloop microbenchmark baseline for the naive loop
	}
}

// viaReference pins block XOR to the slow reference tiers, bypassing the
// runtime SIMD dispatch; library code must not call these.
func viaReference(dst, src []byte) {
	xorblk.XorBytes(dst, src) // want `reference kernel for tests and benchmarks`
	xorblk.XorWords(dst, src) // want `reference kernel for tests and benchmarks`
}

// tableOfKernels stores a reference kernel as a function value — just as
// slow at the eventual call site, so references are reported too.
var tableOfKernels = []func(dst, src []byte){
	xorblk.XorBytes, // want `reference kernel for tests and benchmarks`
}
