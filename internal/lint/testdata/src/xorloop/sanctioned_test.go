// Test files may call the reference kernels — equivalence and fuzz tests
// compare the dispatched tiers against them — so nothing here is reported.
package xorloop

import "code56/internal/xorblk"

// compareAgainstReference is the sanctioned test-file shape.
func compareAgainstReference(dst, src []byte) {
	xorblk.XorBytes(dst, src)
	xorblk.XorWords(dst, src)
}
