// Package sync is a hermetic fixture stub of the standard library's sync
// package: just enough surface (with the production method sets on Mutex
// and RWMutex) for the lockcheck and noalloc fixtures to type-check. The
// analyzers match lock operations by package path "sync" plus receiver
// type, so the stub exercises exactly the production matching logic.
package sync

// Mutex is a mutual exclusion lock stub.
type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return false }

// RWMutex is a reader/writer mutual exclusion lock stub.
type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// Locker is the Lock/Unlock interface.
type Locker interface {
	Lock()
	Unlock()
}

// Cond is a condition variable stub. Wait atomically releases and
// reacquires L, so lockcheck treats it as lock-preserving.
type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}

// Pool is a free-list stub.
type Pool struct{ New func() any }

func (p *Pool) Get() any  { return p.New() }
func (p *Pool) Put(x any) {}
