// Package metricname exercises the metricname analyzer: telemetry names
// must be compile-time constants in pkg.snake_case, prefixed with the
// registering package, with per-instance identities confined to the
// PerInstance seam.
package metricname

import "code56/internal/telemetry"

// metricReads shows the named-constant form of a conforming name.
const metricReads = "metricname.reads"

func register(reg *telemetry.Registry, id string) {
	// Conforming registrations: constant, pkg-prefixed snake_case.
	reg.Counter(metricReads).Inc()
	reg.Counter("metricname.write_errors").Inc()
	reg.Gauge("metricname.queue_depth").Set(1)
	reg.Histogram("metricname.latency_us", []float64{1, 2}).Observe(1)

	// The Rate instrument follows the same rules as the other three.
	reg.Rate("metricname.io_rate").Inc()

	// Convention violations.
	reg.Counter("metricname.BadCase").Inc() // want `does not match the pkg.snake_case convention`
	reg.Counter("reads").Inc()              // want `does not match the pkg.snake_case convention`
	reg.Counter("otherpkg.reads").Inc()     // want `must be prefixed with its registering package`
	reg.Rate("metricname.RateCase").Inc()   // want `does not match the pkg.snake_case convention`
	reg.Rate("other.rate").Inc()            // want `must be prefixed with its registering package`

	// Runtime-computed names are rejected; dynamic identities belong in
	// PerInstance's id argument.
	name := "metricname." + id
	reg.Counter(name).Inc() // want `must be a compile-time constant string`

	// The sanctioned per-instance seam: constant prefix and suffixes, the
	// id carries the only runtime-varying part.
	inst := reg.PerInstance("metricname.disk", id)
	inst.Counter("reads").Inc()
	inst.Gauge("depth").Set(2)
	inst.Histogram("latency_us", []float64{1}).Observe(1)
	inst.Counter("two.segments").Inc() // want `must be a single snake_case segment`
	reg.PerInstance("Disk", id)        // want `does not match the pkg.snake_case convention`
}
