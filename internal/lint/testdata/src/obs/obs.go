// Package obs mirrors the production observability plane's metric
// registrations: the plane's self-metrics are constant obs.* names, and a
// name assembled at runtime (e.g. from a request path) is rejected —
// dynamic identities belong in the PerInstance seam.
package obs

import "code56/internal/telemetry"

func register(reg *telemetry.Registry, path string) {
	// The plane's self-metrics, as the production package registers them.
	reg.Counter("obs.http_requests").Inc()
	reg.Counter("obs.scrapes").Inc()
	reg.Gauge("obs.watch_clients").Set(0)
	reg.Rate("obs.scrape_rate").Inc()

	// A per-endpoint counter keyed on the request path must not be spelled
	// as a runtime-concatenated name.
	reg.Counter("obs.requests." + path).Inc() // want `must be a compile-time constant string`

	// The sanctioned form of the same idea.
	reg.PerInstance("obs.endpoint", path).Counter("requests").Inc()
}
