// Package trace mirrors the tracer-side registrations: the ring sink's
// overflow counter is a constant trace.* name, and per-span-name timing
// histograms go through the PerInstance seam (the span name is the
// runtime-varying id).
package trace

import "code56/internal/telemetry"

func register(reg *telemetry.Registry, spanName string) {
	reg.Counter("trace.dropped_spans").Inc()

	// Span-duration histograms keyed by span name: the constant prefix
	// passes, the span name rides in the id argument.
	inst := reg.PerInstance("trace.span_us", spanName)
	inst.Histogram("us", []float64{10, 100}).Observe(1)

	// Spelling the same thing as a concatenated full name is rejected.
	reg.Histogram("trace.span_us."+spanName, []float64{10}).Observe(1) // want `must be a compile-time constant string`
}
