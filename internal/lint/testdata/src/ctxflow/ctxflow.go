// Package ctxflow exercises the ctxflow analyzer: context-aware entry
// points must thread their ctx into the parallel engine, and library code
// must not manufacture contexts outside the serial-wrapper shape.
package ctxflow

import (
	"context"

	"code56/internal/parallel"
)

// EncodeContext threads its ctx into the fan-out; clean.
func EncodeContext(ctx context.Context, n int) error {
	return parallel.ForEach(ctx, n, func(int) error { return nil })
}

// Encode is the sanctioned serial compat wrapper: no ctx parameter, and
// Background passed directly as a call argument.
func Encode(n int) error {
	return EncodeContext(context.Background(), n)
}

// BatchContext covers ForEachBatch threading; clean.
func BatchContext(ctx context.Context, n int) error {
	return parallel.ForEachBatch(ctx, n, 4096, func(lo, hi int) error { return nil })
}

// DerivedContext threads a context derived from its ctx; clean.
func DerivedContext(ctx context.Context, n int) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return parallel.ForEach(cctx, n, func(int) error { return nil })
}

// closureThreading: a literal capturing the enclosing ctx threads it;
// clean.
func closureThreading(ctx context.Context, n int) func() error {
	return func() error {
		return parallel.ForEach(ctx, n, func(int) error { return nil })
	}
}

// ManufacturedForEach severs cancellation despite having a ctx.
func ManufacturedForEach(ctx context.Context, n int) error {
	return parallel.ForEach(context.Background(), n, func(int) error { return nil }) // want `manufactured context`
}

// rootCtx stands in for any unrelated stored context.
var rootCtx context.Context

// StaleContext threads a stored global instead of its own ctx.
func StaleContext(ctx context.Context, n int) error {
	return parallel.ForEach(rootCtx, n, func(int) error { return nil }) // want `does not thread this function's ctx`
}

// XorMultiStale covers XorMulti with an unthreaded first argument.
func XorMultiStale(ctx context.Context, dst []byte, srcs [][]byte) error {
	return parallel.XorMulti(rootCtx, dst, srcs) // want `does not thread this function's ctx`
}

// closureManufactured: a literal under a ctx-bearing function makes its
// own root.
func closureManufactured(ctx context.Context, n int) func() error {
	return func() error {
		return parallel.ForEach(context.Background(), n, func(int) error { return nil }) // want `manufactured context`
	}
}

// todoCall: library code must never reach for context.TODO.
func todoCall(n int) error {
	return EncodeContext(context.TODO(), n) // want `must not call context.TODO`
}

// storedBackground manufactures a context and stores it instead of passing
// it onward; not the serial-wrapper shape.
func storedBackground() context.Context {
	ctx := context.Background() // want `stored instead of passed`
	return ctx
}

// backgroundWithCtx manufactures a root inside a function that already has
// a ctx in scope.
func backgroundWithCtx(ctx context.Context, pick func(a, b context.Context) context.Context) context.Context {
	return pick(ctx, context.Background()) // want `already has a ctx in scope`
}
