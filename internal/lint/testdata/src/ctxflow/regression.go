// Regression fixture: the PR 3 heal shape. The scrub loop's repair fan-out
// must run under the caller's ctx — the original bug class let a cancelled
// migration keep healing (and writing) stripes in the background.
package ctxflow

import (
	"context"

	"code56/internal/parallel"
)

// healStripes is the post-fix shape: cancellation reaches every in-flight
// repair.
func healStripes(ctx context.Context, stripes int, repair func(int) error) error {
	return parallel.ForEach(ctx, stripes, repair)
}

// healStripesDetached is the pre-fix shape: the fan-out runs on a fresh
// root, so cancelling the migration does not stop in-flight heals.
func healStripesDetached(ctx context.Context, stripes int, repair func(int) error) error {
	return parallel.ForEach(context.Background(), stripes, repair) // want `manufactured context`
}

// redoAfterReplay is the PR 7 WAL-replay shape: after the intent log
// replays to a watermark, the stripes above it are redone through the
// parallel engine — under the resuming caller's ctx, so aborting the
// resume also stops the redo fan-out.
func redoAfterReplay(ctx context.Context, watermark, total int, redo func(int) error) error {
	return parallel.ForEach(ctx, total-watermark, func(i int) error {
		return redo(watermark + i)
	})
}

// redoAfterReplayDetached manufactures a root for the redo fan-out: a
// cancelled resume would keep rewriting stripes behind the caller's back,
// the exact bug class replay-then-redo must not reintroduce.
func redoAfterReplayDetached(ctx context.Context, watermark, total int, redo func(int) error) error {
	return parallel.ForEach(context.Background(), total-watermark, func(i int) error { // want `manufactured context`
		return redo(watermark + i)
	})
}
