// Regression fixture: the PR 3 heal shape. The scrub loop's repair fan-out
// must run under the caller's ctx — the original bug class let a cancelled
// migration keep healing (and writing) stripes in the background.
package ctxflow

import (
	"context"

	"code56/internal/parallel"
)

// healStripes is the post-fix shape: cancellation reaches every in-flight
// repair.
func healStripes(ctx context.Context, stripes int, repair func(int) error) error {
	return parallel.ForEach(ctx, stripes, repair)
}

// healStripesDetached is the pre-fix shape: the fan-out runs on a fresh
// root, so cancelling the migration does not stop in-flight heals.
func healStripesDetached(ctx context.Context, stripes int, repair func(int) error) error {
	return parallel.ForEach(context.Background(), stripes, repair) // want `manufactured context`
}
