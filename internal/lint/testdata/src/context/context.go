// Package context stubs the standard library's context package so fixture
// loading stays hermetic (no GOROOT source compilation). The ctxflow
// analyzer matches by the import path "context", which this stub occupies
// inside the fixture tree.
package context

// Context carries deadlines and cancellation signals across API
// boundaries.
type Context interface {
	Done() <-chan struct{}
	Err() error
}

// CancelFunc tells an operation to abandon its work.
type CancelFunc func()

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }
func (emptyCtx) Err() error            { return nil }

// Background returns a non-nil empty root context.
func Background() Context { return emptyCtx{} }

// TODO returns a placeholder context.
func TODO() Context { return emptyCtx{} }

// WithCancel returns a derived context and its cancel function.
func WithCancel(parent Context) (Context, CancelFunc) { return parent, func() {} }
