// Fixture for the noalloc analyzer: allocating constructs, interface
// boxing, callee proofs, closure shapes, and the failure-path exemptions.
// Every `// want` comment pins one diagnostic.
package noalloc

import (
	"errors"
	"fmt"

	"code56/internal/bufpool"
)

type point struct{ x, y int }

// unannotated functions may allocate freely.
func unannotated(n int) []byte { return make([]byte, n) }

// --- allocating builtins and literals ---

//c56:noalloc
func usesMake(n int) []byte {
	return make([]byte, n) // want `make allocates in //c56:noalloc function usesMake`
}

//c56:noalloc
func usesNew() *int {
	return new(int) // want `new allocates`
}

//c56:noalloc
func usesAppend(dst []byte, b byte) []byte {
	return append(dst, b) // want `append may grow its backing array \(allocates\)`
}

//c56:noalloc
func mapWrite(m map[string]int, k string) {
	m[k] = 1 // want `map assignment may allocate`
}

//c56:noalloc
func mapReadOK(m map[string]int, k string) int {
	return m[k] // reads never grow the table
}

//c56:noalloc
func literals() {
	_ = []int{1, 2}       // want `slice literal allocates`
	_ = map[string]int{}  // want `map literal allocates`
	_ = &point{x: 1}      // want `&composite literal allocates`
	_ = point{x: 1, y: 2} // a value-typed struct literal lives on the stack
}

//c56:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//c56:noalloc
func concatAssign(s *string, t string) {
	*s += t // want `string concatenation allocates`
}

//c56:noalloc
func conv(s string) []byte {
	return []byte(s) // want `conversion between string and byte/rune slice allocates`
}

//c56:noalloc
func numericConvOK(x int) int64 {
	return int64(x) // numeric conversions are register moves
}

// --- interface boxing: the true positive and its negative twin ---

//c56:noalloc
func takeAny(v any) {
	_ = v
}

// boxArg passes a concrete int where an interface is expected: the
// compiler must heap-box the value.
//
//c56:noalloc
func boxArg(n int) {
	takeAny(n) // want `argument boxes int into (any|interface\{\}) \(allocates\)`
}

// boxArgTwin is the negative twin: the value is already an interface, so
// passing it through copies a two-word header and allocates nothing.
//
//c56:noalloc
func boxArgTwin(v any) {
	takeAny(v)
}

// boxPointerOK: a pointer stores directly in the interface data word — the
// *entry-box idiom bufpool uses to keep sync.Pool traffic allocation-free.
//
//c56:noalloc
func boxPointerOK(p *point) {
	takeAny(p)
}

//c56:noalloc
func returnsBoxed(n int) any {
	return n // want `return boxes int into (any|interface\{\}) \(allocates\)`
}

//c56:noalloc
func assignBoxed(n int) {
	var v any
	v = n // want `assignment boxes int into (any|interface\{\}) \(allocates\)`
	_ = v
}

//c56:noalloc
func convBoxed(n int) any {
	return any(n) // want `conversion boxes int into (any|interface\{\}) \(allocates\)`
}

//c56:noalloc
func declBoxed(n int) {
	var v any = n // want `assignment boxes int into (any|interface\{\}) \(allocates\)`
	_ = v
}

// sprintfHot shows the fmt-style variadic shape: the call is untrusted
// AND the int argument boxes into the variadic any slot.
//
//c56:noalloc
func sprintfHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want `calls fmt.Sprintf, which is not in the noalloc trusted set` `argument boxes int into (any|interface\{\}) \(allocates\)`
}

// --- failure-path exemptions ---

// coldErrorPath: a nested block concluding with a non-nil error return is
// a failure path; fmt.Errorf there never runs in the steady state.
//
//c56:noalloc
func coldErrorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

//c56:noalloc
func coldPanicPath(ok bool) {
	if !ok {
		panic(fmt.Sprintf("bad state"))
	}
}

// hotErrorReturn: the top-level statement list gets no exemption — this
// function allocates every time it runs.
//
//c56:noalloc
func hotErrorReturn(n int) error {
	return fmt.Errorf("always: %d", n) // want `calls fmt.Errorf, which is not in the noalloc trusted set` `argument boxes int into (any|interface\{\}) \(allocates\)`
}

// --- callee proofs ---

//c56:noalloc
func leafAnnotated(n int) int { return n * 2 }

//c56:noalloc
func callsAnnotated(n int) int {
	return leafAnnotated(n) // the proof composes through annotated callees
}

func helper(n int) int { return n }

//c56:noalloc
func callsUnannotated(n int) int {
	return helper(n) // want `calls helper, which is not marked //c56:noalloc`
}

// asmStub has no body: an assembly kernel, implicitly trusted leaf code.
func asmStub(dst *byte, src *byte, n int)

//c56:noalloc
func callsStub(dst, src *byte, n int) {
	asmStub(dst, src, n)
}

//c56:noalloc
func rentsBuffer(n int) []byte {
	return bufpool.Get(n) // bufpool.Get is in the trusted table
}

//c56:noalloc
func mintsError(msg string) error {
	return errors.New(msg) // want `calls errors.New, which is not in the noalloc trusted set`
}

//c56:noalloc
func inspectsError(err, target error) bool {
	return errors.Is(err, target) // errors.Is is in the trusted table
}

// --- methods ---

type ring struct{ buf []byte }

//c56:noalloc
func (r *ring) reset() {
	for i := range r.buf {
		r.buf[i] = 0 // a slice element write, not a map write
	}
}

//c56:noalloc
func (r *ring) clear() {
	r.reset() // annotated method in the same package
}

// --- closures ---

//c56:noalloc
func escapingClosure(n int) func() int {
	return func() int { return n } // want `closure captures variables \(allocates\)`
}

//c56:noalloc
func staticFuncOK() func(int) int {
	return func(x int) int { return x * x } // capture-free: a static value
}

//c56:noalloc
func localClosureOK(n int) int {
	double := func() int { return n * 2 }
	return double() // only ever called: the closure stays on the stack
}

//c56:noalloc
func localClosureAlloc(n int) []byte {
	build := func() []byte {
		return make([]byte, n) // want `make allocates in //c56:noalloc function localClosureAlloc`
	}
	return build()
}

//c56:noalloc
func leakedClosure(n int) func() int {
	f := func() int { return n } // want `closure captures variables \(allocates\)`
	return f
}

//c56:noalloc
func iifeOK(n int) int {
	return func() int { return n + 1 }() // immediately invoked: runs inline
}

//c56:noalloc
func dynamicCall(f func() int) int {
	return f() // want `dynamic call through f cannot be proven alloc-free`
}

//c56:noalloc
func spawns(done func()) {
	go done() // want `go statement starts a goroutine \(allocates\)`
}

// --- suppression and hot-path shapes ---

//c56:noalloc
func suppressedMiss(n int) []byte {
	return make([]byte, n) //lint:allow noalloc pool miss mints a fresh buffer by design
}

//c56:noalloc
func hotPathOK(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	copy(dst[:n], src[:n])
	p := point{x: 1, y: 2}
	return p.x + n
}

// --- annotation validation ---

//c56:noalloc always // want `malformed annotation: //c56:noalloc takes no arguments`
func malformed() {}
