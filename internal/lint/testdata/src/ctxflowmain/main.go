// Command ctxflowmain exercises the package-main exemption: binaries own
// their root context, so Background is legal anywhere here.
package main

import (
	"context"

	"code56/internal/parallel"
)

func main() {
	ctx := context.Background()
	_ = parallel.ForEach(ctx, 8, func(int) error { return nil })
	_ = parallel.ForEach(context.Background(), 4, func(int) error { return nil })
}

// runContext still threads its ctx: the exemption covers manufacturing
// roots, not ignoring a ctx that is in scope.
func runContext(ctx context.Context, n int) error {
	return parallel.ForEach(rootOf(), n, func(int) error { return nil }) // want `does not thread this function's ctx`
}

func rootOf() context.Context { return context.Background() }
