// Package errors is a hermetic fixture stub of the standard library's
// errors package for the noalloc fixtures: Is/As are in the trusted set,
// New allocates.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

// New returns an error that formats as text.
func New(text string) error { return &errorString{s: text} }

// Is reports whether any error in err's tree matches target.
func Is(err, target error) bool { return err == target }

// As finds the first error in err's tree matching target.
func As(err error, target any) bool { return false }
