// A second package named metricname at a different import path: it
// re-registers a metric the first package owns, which the analyzer reports
// as a cross-package duplicate.
package metricname

import "code56/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("metricname.reads").Inc() // want `already registered by package metricname`
	reg.Counter("metricname.dup_unique").Inc()
}
