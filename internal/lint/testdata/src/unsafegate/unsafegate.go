// Package unsafegate exercises the unsafegate analyzer: unsafe and the
// reflect header types are rejected outside xorblk's wide kernel.
package unsafegate

import (
	"reflect"
	"unsafe" // want `unsafe is only permitted in`
)

// peek reinterprets memory the way only the gated wide kernel may.
func peek(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}

// header rebuilds a slice header, the classic unsafe-in-disguise shape;
// both the type reference and the literal are reported.
func header(b []byte) reflect.SliceHeader { // want `reflect.SliceHeader is unsafe in disguise`
	return reflect.SliceHeader{Data: 0, Len: len(b), Cap: cap(b)} // want `reflect.SliceHeader is unsafe in disguise`
}

// str covers the string variant.
func str() (h reflect.StringHeader) { // want `reflect.StringHeader is unsafe in disguise`
	return
}

// simdXor is an assembly stub (body-less function) outside xorblk: SIMD
// kernels must live behind xorblk's dispatch, not in arbitrary packages.
func simdXor(dst, src *byte, n int) // want `assembly stub \(body-less function\) outside`
