// Regression fixtures locking in shapes the analyzer once mis-judged or
// that caused real bugs in the repository's history.
package bufpoolpair

import "code56/internal/bufpool"

// healBlock is the PR 3 scrub-repair shape, post-fix: reconstruct into a
// rented buffer, write it back under the array's write lock, release on
// both the error and success paths.
func healBlock(n int, writeLocked func([]byte) bool) bool {
	repair := bufpool.GetZero(n)
	defer bufpool.Put(repair)
	if !writeLocked(repair) {
		return false
	}
	return true
}

// healBlockLeaky is the pre-fix heal shape: the error return skips the
// Put, leaking one reconstruction buffer per failed heal.
func healBlockLeaky(n int, writeLocked func([]byte) bool) bool {
	repair := bufpool.GetZero(n)
	if !writeLocked(repair) {
		return false // want `rented at line \d+`
	}
	bufpool.Put(repair)
	return true
}

// batchRentals mirrors migrate's runStripeOps: a rental made in one switch
// branch escapes into a slice whose deferred sweep returns everything. The
// branch join must not resurrect the discharged obligation (this was a
// false positive before the obligation-based merge).
func batchRentals(ops []int, n int) {
	var rented [][]byte
	defer func() {
		for _, b := range rented {
			bufpool.Put(b)
		}
	}()
	for _, op := range ops {
		switch op {
		case 0:
			acc := bufpool.Get(n)
			rented = append(rented, acc)
		case 1:
			// This branch rents nothing.
		}
	}
}

// trimInterior is the PR 7 filestore.Trim shape, post-fix: one pooled
// zero chunk rewrites an interior range in a loop with early error
// returns; the defer keeps every exit path clean.
func trimInterior(off, length int64, writeAt func([]byte, int64) error) error {
	const chunk = 64 << 10
	zero := bufpool.GetZero(chunk)
	defer bufpool.Put(zero)
	for length > 0 {
		c := int64(chunk)
		if length < c {
			c = length
		}
		if err := writeAt(zero[:c], off); err != nil {
			return err
		}
		off += c
		length -= c
	}
	return nil
}

// trimInteriorLeaky is the same loop with the Put moved to the fall-
// through exit: the mid-loop error return leaks the zero chunk — the
// shape the defer in filestore.Trim exists to rule out.
func trimInteriorLeaky(off, length int64, writeAt func([]byte, int64) error) error {
	const chunk = 64 << 10
	zero := bufpool.GetZero(chunk)
	for length > 0 {
		c := int64(chunk)
		if length < c {
			c = length
		}
		if err := writeAt(zero[:c], off); err != nil {
			return err // want `rented at line \d+`
		}
		off += c
		length -= c
	}
	bufpool.Put(zero)
	return nil
}

// condRental mirrors raid6's writePartialStripe: a lazily created
// accumulator escapes into a map drained by the deferred sweep; the if
// join with the already-present path must stay clean.
func condRental(keys []int, n int) {
	deltas := map[int][]byte{}
	defer func() {
		for _, b := range deltas {
			bufpool.Put(b)
		}
	}()
	for _, k := range keys {
		acc, ok := deltas[k]
		if !ok {
			acc = bufpool.GetZero(n)
			deltas[k] = acc
		}
		acc[0] = 1
	}
}
