// Package bufpoolpair exercises the bufpoolpair analyzer: every
// bufpool.Get/GetZero must reach a Put on all return paths, or explicitly
// hand ownership elsewhere.
package bufpoolpair

import "code56/internal/bufpool"

// leakPlain rents and falls off the end of the function.
func leakPlain(n int) {
	b := bufpool.Get(n)
	b[0] = 1
} // want `rented at line \d+`

// leakReturn releases on the fallthrough path but not on the early return.
func leakReturn(n int) bool {
	b := bufpool.Get(n)
	if n > 4 {
		return false // want `rented at line \d+`
	}
	bufpool.Put(b)
	return true
}

// earlyReturnBeforeDefer returns between the Get and the defer; the defer
// never registers on that path.
func earlyReturnBeforeDefer(n int) bool {
	b := bufpool.Get(n)
	if n == 0 {
		return false // want `rented at line \d+`
	}
	defer bufpool.Put(b)
	return true
}

// loopLeak rents afresh every iteration and never releases: one buffer
// leaks per pass.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		b := bufpool.Get(n)
		b[0] = byte(i)
	} // want `rented at line \d+`
}

// discarded rentals can never be Put back.
func discarded(n int) {
	_ = bufpool.Get(n) // want `rental discarded`
	bufpool.GetZero(n) // want `rental discarded`
}

// deferPaired is the canonical clean shape.
func deferPaired(n int) byte {
	b := bufpool.Get(n)
	defer bufpool.Put(b)
	return b[0]
}

// explicitPut releases on the single path out.
func explicitPut(n int) {
	b := bufpool.GetZero(n)
	b[0] = 1
	bufpool.Put(b)
}

// aliasPut releases through a re-sliced alias; aliases are tracked with
// the original.
func aliasPut(n int) {
	b := bufpool.Get(n)
	w := b[:n/2]
	bufpool.Put(w)
}

// loopPut balances the rental inside each iteration.
func loopPut(n int) {
	for i := 0; i < n; i++ {
		b := bufpool.Get(n)
		b[0] = byte(i)
		bufpool.Put(b)
	}
}

// transferReturn hands the buffer to the caller, who must Put it.
func transferReturn(n int) []byte {
	b := bufpool.GetZero(n)
	return b
}

// transferAppend retains the buffer in a caller-owned container.
func transferAppend(dst [][]byte, n int) [][]byte {
	b := bufpool.Get(n)
	dst = append(dst, b)
	return dst
}

// spare holds transferred buffers; the map store moves ownership.
var spare = map[int][]byte{}

func transferMap(n int) {
	b := bufpool.Get(n)
	spare[n] = b
}

// transferClosure captures the buffer in the returned closure; ownership
// moves with it.
func transferClosure(n int) func() {
	b := bufpool.Get(n)
	return func() { bufpool.Put(b) }
}

// borrow passes the buffer as a plain call argument (a disk read, a kernel
// call): borrowing, not a transfer — the Put is still required and
// present.
func borrow(n int, read func([]byte) bool) bool {
	b := bufpool.Get(n)
	defer bufpool.Put(b)
	return read(b)
}
