// Package fmt is a hermetic fixture stub of the standard library's fmt
// package: enough surface for the noalloc fixtures to exercise variadic
// interface boxing and the failure-path exemptions.
package fmt

// Errorf formats an error.
func Errorf(format string, args ...any) error { return nil }

// Sprintf formats a string.
func Sprintf(format string, args ...any) string { return format }

// Printf writes formatted output.
func Printf(format string, args ...any) (int, error) { return 0, nil }
