// Package reflect stubs the two standard-library header types the
// unsafegate analyzer bans, so fixtures resolve them without compiling the
// real reflect package from GOROOT source.
package reflect

// SliceHeader is the runtime representation of a slice.
type SliceHeader struct {
	Data uintptr
	Len  int
	Cap  int
}

// StringHeader is the runtime representation of a string.
type StringHeader struct {
	Data uintptr
	Len  int
}
