// Package bufpool stubs the production buffer pool at its real import
// path, so the bufpoolpair analyzer's path matching is exercised exactly
// as in the main module.
package bufpool

// Get rents a buffer of length n.
func Get(n int) []byte { return make([]byte, n) }

// GetZero rents a zeroed buffer of length n.
func GetZero(n int) []byte { return make([]byte, n) }

// Put returns a rented buffer to the pool.
func Put(b []byte) {}

// InFlight reports the bytes currently rented.
func InFlight() int64 { return 0 }
