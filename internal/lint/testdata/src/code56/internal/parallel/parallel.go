// Package parallel stubs the stripe engine's context-aware entry points at
// their real import path, so the ctxflow analyzer's threading checks are
// exercised against the production signatures.
package parallel

import "context"

// Option configures a fan-out call.
type Option func()

// ForEach runs fn(i) for i in [0, n) under ctx.
func ForEach(ctx context.Context, n int, fn func(int) error, opts ...Option) error { return nil }

// ForEachBatch runs fn over cache-sized index ranges under ctx.
func ForEachBatch(ctx context.Context, n, itemBytes int, fn func(lo, hi int) error, opts ...Option) error {
	return nil
}

// XorMulti folds srcs into dst with the fan-out under ctx.
func XorMulti(ctx context.Context, dst []byte, srcs [][]byte, opts ...Option) error { return nil }
