// Package telemetry stubs the production metrics registry at its real
// import path, with the same instrument surface the metricname analyzer
// keys on: Registry.Counter/Gauge/Histogram, Registry.PerInstance and the
// Instanced instrument methods.
package telemetry

// Counter is a monotonically increasing counter.
type Counter struct{ v int64 }

func (c *Counter) Inc()         {}
func (c *Counter) Add(d int64)  {}
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) {}
func (g *Gauge) Add(d int64) {}

// Histogram is a fixed-bucket histogram.
type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

// Registry holds named instruments.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }

// Rate is a windowed event-rate instrument.
type Rate struct{}

func (r *Rate) Inc()        {}
func (r *Rate) Add(d int64) {}

// Rate returns the named rate.
func (r *Registry) Rate(name string) *Rate { return &Rate{} }

// Instanced is a per-instance namespace of a registry.
type Instanced struct {
	r    *Registry
	base string
}

// PerInstance returns the instrument namespace "<prefix>.<id>".
func (r *Registry) PerInstance(prefix, id string) Instanced {
	return Instanced{r: r, base: prefix + "." + id}
}

// Counter returns the instance's counter.
func (i Instanced) Counter(suffix string) *Counter { return i.r.Counter(i.base + "." + suffix) }

// Gauge returns the instance's gauge.
func (i Instanced) Gauge(suffix string) *Gauge { return i.r.Gauge(i.base + "." + suffix) }

// Histogram returns the instance's histogram.
func (i Instanced) Histogram(suffix string, bounds []float64) *Histogram {
	return i.r.Histogram(i.base+"."+suffix, bounds)
}
