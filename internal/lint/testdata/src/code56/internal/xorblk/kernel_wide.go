//go:build !purego

package xorblk

import "unsafe"

// words reinterprets an 8-byte-aligned slice as machine words: the one
// unsafe use the unsafegate analyzer sanctions, in the one file allowed to
// hold it, behind the required !purego gate.
func words(b []byte) []uint64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
