//go:build !purego && !noasm

// Assembly stub declarations behind the required purego/noasm gates: the
// one place the unsafegate analyzer permits body-less functions, asserted
// clean by the positive fixture run.

package xorblk

//go:noescape
func avx2Xor(dst, src *byte, n int, nt bool)

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
