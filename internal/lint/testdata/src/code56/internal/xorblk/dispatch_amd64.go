//go:build !purego && !noasm

// A sanctioned dispatch file: unsafe is permitted here behind the
// purego+noasm gates (the sanction table lists dispatch_amd64.go), so this
// file must produce no diagnostics.

package xorblk

import "unsafe"

// ptr exposes a slice's base address for the dispatcher's alignment math.
func ptr(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}

// useStub keeps the stub and ptr referenced.
func useStub(dst, src []byte) {
	if ptr(dst)&63 == 0 {
		avx2Xor(&dst[0], &src[0], len(dst), false)
	}
}
