// Package xorblk stubs the production XOR kernels at their real import
// path. The byte loop below is deliberate: internal/xorblk is the one
// package the xorloop analyzer exempts, and running the analyzer over this
// stub asserts that exemption.
package xorblk

// XorBytes is the portable byte-at-a-time reference kernel.
func XorBytes(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// Xor dispatches to the widest kernel the build allows.
func Xor(dst, src []byte) { XorBytes(dst, src) }

// XorInto writes a^b into dst.
func XorInto(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// XorMulti folds srcs into dst and reports the XOR op count.
func XorMulti(dst []byte, srcs ...[]byte) int {
	for _, s := range srcs {
		Xor(dst, s)
	}
	return len(srcs) - 1
}

// XorWords is the word-at-a-time reference kernel.
func XorWords(dst, src []byte) { XorBytes(dst, src) }
