// Package binary stubs the ByteOrder subset the xorloop analyzer's
// word-path detection keys on (PutUint* calls resolved to the import path
// "encoding/binary").
package binary

type littleEndian struct{}

// LittleEndian is the little-endian ByteOrder.
var LittleEndian littleEndian

func (littleEndian) Uint64(b []byte) uint64       { return 0 }
func (littleEndian) PutUint64(b []byte, v uint64) {}
func (littleEndian) Uint32(b []byte) uint32       { return 0 }
func (littleEndian) PutUint32(b []byte, v uint32) {}
