//go:build !purego

// An assembly stub file carrying only the !purego gate: stubs must also be
// excluded under noasm, so the analyzer demands the missing term.

package xorblk

//go:noescape
func avx2Xor(dst, src *byte, n int, nt bool) // want `lacks a build constraint excluding it under the noasm tag`
