// A kernel_wide.go without its !purego gate: unsafe is allowed in this
// file, but the analyzer must still demand the build constraint that keeps
// the portable build unsafe-free.
package xorblk

import "unsafe" // want `lacks a build constraint excluding it under`

func words(b []byte) []uint64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
