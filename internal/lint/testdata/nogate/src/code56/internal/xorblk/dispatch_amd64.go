// A sanctioned dispatch file with no build constraint at all: unsafe is
// allowed here, but both the purego and noasm exclusions are demanded.

package xorblk

import "unsafe" // want `lacks a build constraint excluding it under the purego tag` `lacks a build constraint excluding it under the noasm tag`

// ptr exposes a slice's base address.
func ptr(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}

// use keeps the stub referenced across the fixture files.
func use(dst, src []byte) {
	if ptr(dst)&63 == 0 {
		avx2Xor(&dst[0], &src[0], len(dst), false)
	}
}
