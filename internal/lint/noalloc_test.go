package lint_test

import (
	"testing"

	"code56/internal/lint"
	"code56/internal/lint/analysistest"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.NoAlloc, "noalloc")
}
