package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
	"sync"

	"code56/internal/lint/analysis"
)

// MetricName enforces the telemetry naming convention.
//
// Dashboards, the README metric reference and cross-run comparisons all
// key on literal metric names; a name computed at runtime or drifted
// between packages breaks them silently (the registry happily get-or-
// creates whatever string it is handed). The rules:
//
//   - the name argument of Registry.Counter/Gauge/Histogram/Rate, the prefix
//     argument of Registry.PerInstance and the suffix arguments of the
//     Instanced instrument methods must be compile-time constant strings
//     (literals, consts, or concatenations thereof);
//   - full names and PerInstance prefixes follow pkg.snake_case: two or
//     more dot-separated snake_case segments, the first being the
//     registering package's name (per-instance suffixes are a single
//     snake_case segment — the dynamic instance id supplies the middle);
//   - a full name may be registered from only one package: the same
//     constant appearing in two packages is reported at both sites.
//
// Truly dynamic identities (one gauge per disk) belong in the id argument
// of Registry.PerInstance, which is the one sanctioned seam for runtime
// strings in a metric name.
//
// The internal/telemetry package itself is exempt (it implements the
// seam), as are test files (the driver never analyzes them).
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require telemetry metric names to be pkg.snake_case compile-time " +
		"constants with no duplicate registrations across packages",
	Run: runMetricName,
}

var (
	fullNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)
	segmentRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// metricSeen records, per metric name, the package that first registered
// it, for cross-package duplicate detection. The driver runs packages in a
// deterministic order within one process; ResetMetricState isolates test
// runs.
var (
	metricMu   sync.Mutex
	metricSeen = map[string]string{} // name -> package path
)

// ResetMetricState clears the cross-package duplicate-registration state.
// Tests call it between fixture runs.
func ResetMetricState() {
	metricMu.Lock()
	defer metricMu.Unlock()
	metricSeen = map[string]string{}
}

func runMetricName(pass *analysis.Pass) error {
	if pass.Pkg.Path() == telemetryPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			info := pass.TypesInfo
			switch {
			case methodOn(info, call, telemetryPath, "Registry", "Counter"),
				methodOn(info, call, telemetryPath, "Registry", "Gauge"),
				methodOn(info, call, telemetryPath, "Registry", "Histogram"),
				methodOn(info, call, telemetryPath, "Registry", "Rate"):
				checkMetricArg(pass, call.Args[0], fullName)
			case methodOn(info, call, telemetryPath, "Registry", "PerInstance"):
				checkMetricArg(pass, call.Args[0], namePrefix)
			case methodOn(info, call, telemetryPath, "Instanced", "Counter"),
				methodOn(info, call, telemetryPath, "Instanced", "Gauge"),
				methodOn(info, call, telemetryPath, "Instanced", "Histogram"):
				checkMetricArg(pass, call.Args[0], nameSuffix)
			}
			return true
		})
	}
	return nil
}

// nameKind distinguishes what shape a constant metric-name argument must
// have.
type nameKind int

const (
	fullName   nameKind = iota // pkg.snake_case, duplicate-checked
	namePrefix                 // pkg.snake_case, not duplicate-checked (instances complete it)
	nameSuffix                 // single snake_case segment
)

func checkMetricArg(pass *analysis.Pass, arg ast.Expr, kind nameKind) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time constant string "+
			"(use Registry.PerInstance for per-instance identities); see the metricname invariant in DESIGN.md")
		return
	}
	name := constant.StringVal(tv.Value)
	switch kind {
	case fullName, namePrefix:
		if !fullNameRE.MatchString(name) {
			pass.Reportf(arg.Pos(), "metric name %q does not match the pkg.snake_case convention "+
				"(lowercase dot-separated snake_case segments, e.g. %q)", name, "raid6.stripe_encodes")
			return
		}
		if pkgName := pass.Pkg.Name(); pkgName != "main" {
			if first := name[:strings.IndexByte(name, '.')]; first != pkgName {
				pass.Reportf(arg.Pos(), "metric name %q must be prefixed with its registering package (%q), got segment %q",
					name, pkgName+".", first)
				return
			}
		}
		if kind == fullName {
			checkDuplicate(pass, arg.Pos(), name)
		}
	case nameSuffix:
		if !segmentRE.MatchString(name) {
			pass.Reportf(arg.Pos(), "per-instance metric suffix %q must be a single snake_case segment "+
				"(the instance id supplies the middle of the name)", name)
		}
	}
}

func checkDuplicate(pass *analysis.Pass, pos token.Pos, name string) {
	metricMu.Lock()
	defer metricMu.Unlock()
	if prev, ok := metricSeen[name]; ok && prev != pass.Pkg.Path() {
		pass.Reportf(pos, "metric %q is already registered by package %s; duplicate cross-package registrations make the two instruments indistinguishable", name, prev)
		return
	}
	if _, ok := metricSeen[name]; !ok {
		metricSeen[name] = pass.Pkg.Path()
	}
}
