// The -audit-allows mode. Every `//lint:allow` directive is a standing
// exception to a repository invariant, and exceptions rot: the code it
// excused gets rewritten, the diagnostic it silenced stops firing, and
// the directive lingers as documentation of a constraint that no longer
// binds — or worse, as camouflage for a brand-new violation introduced on
// the same line years later. AuditAllows re-runs the suite with
// suppression disabled and cross-references every directive against the
// diagnostics its line actually produced; an allow whose named analyzer
// no longer fires there is stale and fails the audit.

package driver

import (
	"fmt"
	"io"
	"sort"

	"code56/internal/lint/analysis"
)

// allowSite identifies one (file, line, analyzer) suppression site.
type allowSite struct {
	file     string
	line     int
	analyzer string
}

// allowAudit is one //lint:allow directive plus whether a diagnostic
// from its named analyzer still lands on its line.
type allowAudit struct {
	pos      string // file:line:col, preformatted
	file     string
	line     int
	col      int
	analyzer string
	reason   string
	stale    bool
}

func (a allowAudit) String() string {
	status := "used "
	if a.stale {
		status = "STALE"
	}
	return fmt.Sprintf("%s %s: //lint:allow %s %s", status, a.pos, a.analyzer, a.reason)
}

// AuditAllows loads the packages matched by patterns (with optional build
// tags), runs every analyzer with suppression disabled, and prints one
// line per //lint:allow directive recording whether the allowed
// diagnostic still fires on that line. It returns the count of stale
// directives so callers can gate on it; a non-nil error means the load
// or an analyzer itself failed.
func AuditAllows(w io.Writer, analyzers []*analysis.Analyzer, tags string, patterns []string) (int, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return 0, err
	}
	roots, fset, imp, err := load(tags, patterns)
	if err != nil {
		return 0, err
	}
	var audits []allowAudit
	for _, p := range roots {
		if len(p.CgoFiles) > 0 {
			continue // Run already reports the skip; nothing to audit here
		}
		filenames, goVersion := sourceFiles(p)
		files, pkg, info, err := checkPackage(fset, imp, p.ImportPath, goVersion, filenames)
		if err != nil {
			return 0, err
		}
		allows := analysis.Allows(files)
		if len(allows) == 0 {
			continue
		}
		hits := map[allowSite]bool{}
		for _, a := range analyzers {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg,
				TypesInfo: info,
				Report: func(d analysis.Diagnostic) {
					pos := fset.Position(d.Pos)
					hits[allowSite{pos.Filename, pos.Line, name}] = true
				},
			}
			if err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
		for _, al := range allows {
			pos := fset.Position(al.Pos)
			audits = append(audits, allowAudit{
				pos:      pos.String(),
				file:     pos.Filename,
				line:     pos.Line,
				col:      pos.Column,
				analyzer: al.Analyzer,
				reason:   al.Reason,
				stale:    !hits[allowSite{pos.Filename, pos.Line, al.Analyzer}],
			})
		}
	}
	sort.Slice(audits, func(i, j int) bool {
		a, b := audits[i], audits[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	stale := 0
	for _, a := range audits {
		fmt.Fprintln(w, a)
		if a.stale {
			stale++
		}
	}
	fmt.Fprintf(w, "c56-lint: %d //lint:allow directive(s), %d stale\n", len(audits), stale)
	return stale, nil
}
