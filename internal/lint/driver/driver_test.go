package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"code56/internal/lint"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCfg marshals a vet config the way cmd/go does and returns its path.
func writeCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return writeFile(t, dir, "vet.cfg", string(blob))
}

// xorViolation is a hand-rolled XOR loop the xorloop analyzer must flag.
const xorViolation = `package kern

func XorInPlace(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
`

func TestSortFindingsGlobalOrder(t *testing.T) {
	pos := func(file string, line, col int) token.Position {
		return token.Position{Filename: file, Line: line, Column: col}
	}
	fs := []finding{
		{pos: pos("b.go", 1, 1), analyzer: "xorloop", message: "m"},
		{pos: pos("a.go", 9, 1), analyzer: "xorloop", message: "m"},
		{pos: pos("a.go", 2, 5), analyzer: "noalloc", message: "m"},
		{pos: pos("a.go", 2, 5), analyzer: "lockcheck", message: "m"},
		{pos: pos("a.go", 2, 1), analyzer: "xorloop", message: "m"},
	}
	sortFindings(fs)
	var got []string
	for _, f := range fs {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:2:1: m (xorloop)",
		"a.go:2:5: m (lockcheck)",
		"a.go:2:5: m (noalloc)",
		"a.go:9:1: m (xorloop)",
		"b.go:1:1: m (xorloop)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("global sort order:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestDedupFindings(t *testing.T) {
	p := token.Position{Filename: "a.go", Line: 3, Column: 7}
	fs := []finding{
		{pos: p, analyzer: "xorloop", message: "dup"},
		{pos: p, analyzer: "xorloop", message: "dup"},
		{pos: p, analyzer: "xorloop", message: "different message"},
		{pos: p, analyzer: "noalloc", message: "dup"},
	}
	sortFindings(fs)
	out := dedupFindings(fs)
	if len(out) != 3 {
		t.Fatalf("dedup kept %d findings, want 3: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			t.Errorf("adjacent duplicate survived dedup: %v", out[i])
		}
	}
}

// A VetxOnly dependency visit must write the (empty) facts file for the
// go command's cache and produce no diagnostics — without even needing
// readable sources.
func TestUnitcheckerVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, vetConfig{
		ID:         "m/kern",
		ImportPath: "m/kern",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	var buf bytes.Buffer
	n, err := RunUnitchecker(&buf, lint.Suite(), cfg)
	if err != nil || n != 0 {
		t.Fatalf("VetxOnly visit: n=%d err=%v, want 0, nil", n, err)
	}
	if fi, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	} else if fi.Size() != 0 {
		t.Errorf("facts file has %d bytes, want empty", fi.Size())
	}
}

// Test-only units — the generated test main (ID ends in ".test") and the
// external test package (import path ends in "_test") — are skipped even
// when their sources would violate an invariant.
func TestUnitcheckerSkipsTestOnlyUnits(t *testing.T) {
	for _, tc := range []struct {
		name      string
		id, ipath string
	}{
		{"test main unit", "m/kern.test", "m/kern.test"},
		{"external test package", "m/kern [m/kern.test]", "m/kern_test"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			src := writeFile(t, dir, "kern.go", xorViolation)
			cfg := writeCfg(t, dir, vetConfig{
				ID:         tc.id,
				ImportPath: tc.ipath,
				GoFiles:    []string{src},
				VetxOutput: filepath.Join(dir, "out.vetx"),
			})
			var buf bytes.Buffer
			n, err := RunUnitchecker(&buf, lint.Suite(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if n != 0 {
				t.Errorf("test-only unit produced %d findings, want 0:\n%s", n, buf.String())
			}
		})
	}
}

// A unit whose GoFiles are empty, or shrink to empty once in-package
// _test.go files are dropped, analyzes nothing and succeeds.
func TestUnitcheckerEmptyPackage(t *testing.T) {
	dir := t.TempDir()
	testSrc := writeFile(t, dir, "kern_test.go", `package kern
`)
	for _, tc := range []struct {
		name    string
		goFiles []string
	}{
		{"no files at all", nil},
		{"only in-package test files", []string{testSrc}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := writeCfg(t, t.TempDir(), vetConfig{
				ID:         "m/kern",
				ImportPath: "m/kern",
				GoFiles:    tc.goFiles,
				VetxOutput: filepath.Join(dir, "out.vetx"),
			})
			var buf bytes.Buffer
			n, err := RunUnitchecker(&buf, lint.Suite(), cfg)
			if err != nil || n != 0 {
				t.Fatalf("empty unit: n=%d err=%v, want 0, nil", n, err)
			}
		})
	}
}

// The go command encodes a -tags selection as the cfg's GoFiles list (a
// noasm build simply lists different sources); the tool must analyze
// exactly that list. The default-config file carries a violation, the
// noasm replacement is clean — so the finding must appear for the first
// config and disappear for the second.
func TestUnitcheckerTagConfigPropagation(t *testing.T) {
	dir := t.TempDir()
	defSrc := writeFile(t, dir, "kern_default.go", "//go:build !noasm\n\n"+xorViolation)
	noasmSrc := writeFile(t, dir, "kern_noasm.go", `//go:build noasm

package kern

func XorInPlace(dst, src []byte) {
	copy(dst, src)
}
`)

	run := func(src string) (int, string) {
		t.Helper()
		cfg := writeCfg(t, t.TempDir(), vetConfig{
			ID:         "m/kern",
			ImportPath: "m/kern",
			GoFiles:    []string{src},
			VetxOutput: filepath.Join(t.TempDir(), "out.vetx"),
		})
		var buf bytes.Buffer
		n, err := RunUnitchecker(&buf, lint.Suite(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n, buf.String()
	}

	if n, out := run(defSrc); n != 1 || !strings.Contains(out, "(xorloop)") {
		t.Errorf("default config: n=%d out=%q, want the xorloop finding", n, out)
	}
	if n, out := run(noasmSrc); n != 0 {
		t.Errorf("noasm config: n=%d out=%q, want clean", n, out)
	}
}
