// The `go vet -vettool` protocol: the go command probes the tool with
// -V=full (a content-hash version for the build cache) and -flags (the
// tool's supported analyzer flags, as JSON), then invokes it once per
// package with the path of a JSON config file as the sole argument. The
// config carries the package's file list plus an ImportMap/PackageFile
// pair that resolves every import to compiled export data, and names a
// facts file (VetxOutput) the tool must write for the cache. This file
// implements the subset of x/tools' unitchecker that c56-lint needs: the
// suite defines no facts, so VetxOutput is written empty and VetxOnly
// dependency visits do no analysis work.

package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"code56/internal/lint/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for vet
// tools (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake: the go command tracks the
// tool's identity by this line, so it embeds a content hash of the
// executable (matching what x/tools' unitchecker prints).
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), string(h.Sum(nil)))
	return err
}

// PrintFlags implements the -flags handshake: c56-lint exposes no
// analyzer flags to the go command.
func PrintFlags(w io.Writer) error {
	_, err := fmt.Fprintln(w, "[]")
	return err
}

// RunUnitchecker analyzes the single package described by the vet config
// file at cfgPath, printing findings to w. It returns the finding count.
func RunUnitchecker(w io.Writer, analyzers []*analysis.Analyzer, cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The suite defines no analysis facts, so the facts file is always
	// empty — but it must exist for the go command's cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil // dependency visit: facts only, no diagnostics wanted
	}
	// go vet hands the tool the test-augmented package: GoFiles includes
	// the in-package _test.go files (under the plain import path — the
	// go1.24 vet config carries no "[pkg.test]" marker), and external test
	// packages and the generated test main are visited as their own units.
	// The c56-lint invariants are library invariants: tests deliberately
	// build ill-shaped scaffolding (manufactured contexts, raw loops), so —
	// like the multichecker mode, which analyzes `go list`'s GoFiles only —
	// analyze just the non-test sources and skip test-only units.
	if strings.HasSuffix(cfg.ID, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0, nil
	}
	var srcs []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			srcs = append(srcs, f)
		}
	}
	if len(srcs) == 0 {
		return 0, nil
	}
	if err := analysis.Validate(analyzers); err != nil {
		return 0, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	findings, err := analyzePackage(analyzers, fset, imp, cfg.ImportPath, cfg.GoVersion, srcs)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}
