package driver

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"code56/internal/lint"
)

// AuditAllows over a throwaway module containing one live suppression
// (the xorloop hit still fires on its line) and one stale suppression
// (nothing fires there): the audit must list both, flag exactly the
// stale one, and count it in the return value.
func TestAuditAllowsFlagsStaleDirectives(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module auditfixture\n\ngo 1.22\n")
	writeFile(t, dir, "kern.go", `package kern

// xorInPlace carries a live suppression: the flagged XOR loop is still
// on the directive's line.
func xorInPlace(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i] //lint:allow xorloop audit fixture: loop kept on purpose
	}
}

// identity carries a stale suppression: no noalloc diagnostic fires on a
// plain return statement.
func identity(n int) int {
	return n //lint:allow noalloc audit fixture: nothing to silence here
}
`)
	// `go list` resolves patterns against the process working directory's
	// module, so run the audit from inside the fixture module.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()

	var buf bytes.Buffer
	stale, err := AuditAllows(&buf, lint.Suite(), "", []string{"./..."})
	if err != nil {
		t.Fatalf("AuditAllows: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if stale != 1 {
		t.Fatalf("stale count = %d, want 1\n%s", stale, out)
	}
	var used, staleLines int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, "used"):
			used++
			if !strings.Contains(line, "//lint:allow xorloop") {
				t.Errorf("used line is not the xorloop directive: %q", line)
			}
		case strings.HasPrefix(line, "STALE"):
			staleLines++
			if !strings.Contains(line, "//lint:allow noalloc") {
				t.Errorf("stale line is not the noalloc directive: %q", line)
			}
		}
	}
	if used != 1 || staleLines != 1 {
		t.Errorf("audit listed %d used and %d stale directives, want 1 and 1:\n%s",
			used, staleLines, out)
	}
	if !strings.Contains(out, "2 //lint:allow directive(s), 1 stale") {
		t.Errorf("missing summary line:\n%s", out)
	}
}
