// Package driver loads, type-checks and analyzes Go packages for the
// c56-lint suite without any dependency outside the standard library.
//
// Two modes share the analyzer plumbing:
//
//   - multichecker (`c56-lint ./...`): package metadata and compiled
//     export data come from one `go list -deps -export -json` invocation;
//     each root package is parsed with go/parser and type-checked with
//     go/types against the export data through the stdlib gc importer
//     (importer.ForCompiler with a lookup function). Dependencies are
//     never re-type-checked from source — exactly the scheme
//     golang.org/x/tools/go/packages uses in LoadTypes mode, shrunk to
//     what five analyzers need.
//
//   - unitchecker (`go vet -vettool=$(which c56-lint) ./...`): the go
//     command hands the tool one JSON config file per package (GoFiles,
//     ImportMap, PackageFile) plus the -V=full/-flags handshake; see
//     unitchecker.go.
//
// Diagnostics on a line carrying `//lint:allow <analyzer> <reason>` are
// suppressed; a directive with no reason is itself reported. Findings
// print as file:line:col: message (analyzer) and make the process exit
// non-zero, so CI can gate on the suite.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"code56/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// finding is one printable diagnostic.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.pos, f.message, f.analyzer)
}

// load runs one `go list -deps -export -json` over patterns and returns
// the root (non-dependency, non-stdlib) packages sorted by import path,
// plus a FileSet and an importer that resolves every import through the
// listed export data.
func load(tags string, patterns []string) ([]*listPackage, *token.FileSet, types.Importer, error) {
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,Module,Error"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("go list: %w", err)
	}

	exports := map[string]string{}
	var roots []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		pp := p
		if pp.Export != "" {
			exports[pp.ImportPath] = pp.Export
		}
		if !pp.DepOnly && !pp.Standard {
			roots = append(roots, &pp)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return roots, fset, imp, nil
}

// sourceFiles returns the package's build-selected sources as absolute
// paths, and the go directive version the type-checker should honor.
func sourceFiles(p *listPackage) (filenames []string, goVersion string) {
	if p.Module != nil && p.Module.GoVersion != "" {
		goVersion = "go" + p.Module.GoVersion
	}
	for _, gf := range p.GoFiles {
		filenames = append(filenames, filepath.Join(p.Dir, gf))
	}
	return filenames, goVersion
}

// Run executes the analyzers over the packages matched by patterns (with
// optional build tags) and prints findings to w. It returns the number of
// findings; a non-nil error means the load itself failed.
func Run(w io.Writer, analyzers []*analysis.Analyzer, tags string, patterns []string) (int, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return 0, err
	}
	roots, fset, imp, err := load(tags, patterns)
	if err != nil {
		return 0, err
	}
	var findings []finding
	for _, p := range roots {
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(w, "c56-lint: skipping %s: cgo packages are not supported\n", p.ImportPath)
			continue
		}
		filenames, goVersion := sourceFiles(p)
		fs, err := analyzePackage(analyzers, fset, imp, p.ImportPath, goVersion, filenames)
		if err != nil {
			return 0, err
		}
		findings = append(findings, fs...)
	}
	// One globally deterministic report: sorted by file, line and column
	// across all packages (not just within each), with exact repeats
	// printed once. The same site can surface twice when overlapping
	// patterns visit a package through two roots, or when a cross-package
	// analyzer (metricname's duplicate registry) reports one collision
	// from both of its ends.
	sortFindings(findings)
	findings = dedupFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}

// sortFindings orders findings by file, line, column, then analyzer and
// message so equal positions still print deterministically.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
}

// dedupFindings drops adjacent identical findings (same position,
// analyzer and message). Call after sortFindings.
func dedupFindings(fs []finding) []finding {
	out := fs[:0]
	for _, f := range fs {
		if len(out) > 0 && f == out[len(out)-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// checkPackage parses and type-checks one package's sources.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, goVersion string,
	filenames []string) ([]*ast.File, *types.Package, *types.Info, error) {

	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return files, pkg, info, nil
}

// analyzePackage parses and type-checks one package, runs every analyzer,
// and returns the surviving (non-suppressed) findings sorted by position.
func analyzePackage(analyzers []*analysis.Analyzer, fset *token.FileSet, imp types.Importer,
	importPath, goVersion string, filenames []string) ([]finding, error) {

	files, pkg, info, err := checkPackage(fset, imp, importPath, goVersion, filenames)
	if err != nil {
		return nil, err
	}

	allowed, badDirectives := analysis.Suppressions(fset, files)
	var findings []finding
	for _, d := range badDirectives {
		findings = append(findings, finding{pos: fset.Position(d.Pos), analyzer: "lint", message: d.Message})
	}
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, importPath, err)
		}
		for _, d := range diags {
			if analysis.Suppressed(fset, allowed, a.Name, d) {
				continue
			}
			findings = append(findings, finding{pos: fset.Position(d.Pos), analyzer: a.Name, message: d.Message})
		}
	}
	sortFindings(findings)
	return findings, nil
}
