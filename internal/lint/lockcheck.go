package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"code56/internal/lint/analysis"
)

// Lockcheck verifies `//c56:guardedby <mu>` field annotations in the
// checklocks shape: every read or write of an annotated struct field must
// happen while the named sibling mutex is held on the same instance.
//
// The annotation grammar:
//
//   - `//c56:guardedby <mu>` on a struct field declares that the field may
//     only be accessed while the sibling field <mu> (a sync.Mutex or
//     sync.RWMutex, possibly behind a pointer) is held. Writes require the
//     exclusive lock; reads accept RLock on an RWMutex.
//   - `//c56:requires <mu> [<mu2> ...]` on a method's doc comment declares
//     that callers must hold the named receiver mutexes exclusively; the
//     body is checked with them held, and every same-package call site is
//     checked to hold them (so the obligation propagates transitively
//     through annotated helpers).
//
// The checker walks each function body path-sensitively, in the style the
// repository's bufpoolpair analyzer established: `mu.Lock()`/`RLock()`
// acquire, `Unlock()`/`RUnlock()` release, `defer mu.Unlock()` holds the
// lock to every exit of the path, `cond.Wait()` is lock-preserving, branch
// joins intersect the held sets (a lock is held after an if/switch only
// when every live arm held it), and loop bodies are iterated to a fixed
// point so a lock released on a back edge is not assumed on the next
// iteration. Break and continue carry their held sets to the loop exit and
// back edge respectively — the repository's worker loops acquire inside a
// `for {}` and exit via break while holding.
//
// Two instance-precision rules keep the check sound without whole-program
// analysis: accesses are resolved to a (root variable, selector path) pair
// so `a.mu` never vouches for `b.field`; and locals freshly built from a
// composite literal or new() in the same body (constructors) are exempt —
// no other goroutine can hold a reference yet.
var Lockcheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "check that every access to a //c56:guardedby field holds the named " +
		"mutex (Lock for writes, RLock for reads), honoring //c56:requires " +
		"annotations transitively at call sites",
	Run: runLockcheck,
}

// Annotation directives recognized by lockcheck.
const (
	guardedByDirective = "//c56:guardedby"
	requiresDirective  = "//c56:requires"
)

// Lock modes. Exclusive subsumes read.
const (
	lockRead = 1 + iota
	lockExclusive
)

// lockKey names one mutex instance reachable from a function body: the
// root variable plus the dotted field path to the mutex (e.g. {m, "mu"}
// for m.mu, {s, "bucket.mu"} for s.bucket.mu).
type lockKey struct {
	root types.Object
	path string
}

// lockState is the set of mutexes held (with their modes) along one
// control-flow path.
type lockState struct {
	held       map[lockKey]int
	terminated bool
}

func newLockState() lockState {
	return lockState{held: map[lockKey]int{}}
}

func (st lockState) clone() lockState {
	out := lockState{held: make(map[lockKey]int, len(st.held)), terminated: st.terminated}
	for k, v := range st.held {
		out.held[k] = v
	}
	return out
}

// intersect joins two live paths: a lock survives the join only at the
// weakest mode both paths guarantee.
func intersect(a, b lockState) lockState {
	out := newLockState()
	for k, ma := range a.held {
		if mb, ok := b.held[k]; ok {
			if mb < ma {
				out.held[k] = mb
			} else {
				out.held[k] = ma
			}
		}
	}
	return out
}

// joinStates intersects the live states in sts; if every path terminated,
// the join is terminated too.
func joinStates(sts []lockState) lockState {
	var live []lockState
	for _, st := range sts {
		if !st.terminated {
			live = append(live, st)
		}
	}
	if len(live) == 0 {
		return lockState{held: map[lockKey]int{}, terminated: true}
	}
	out := live[0]
	for _, st := range live[1:] {
		out = intersect(out, st)
	}
	return out
}

func sameState(a, b lockState) bool {
	if a.terminated != b.terminated || len(a.held) != len(b.held) {
		return false
	}
	for k, v := range a.held {
		if b.held[k] != v {
			return false
		}
	}
	return true
}

// guardInfo describes one annotated field: the sibling guard's name and
// whether the guard is an RWMutex (whose RLock satisfies reads).
type guardInfo struct {
	guard string
	rw    bool
}

// lockcheckPkg is the per-package annotation index.
type lockcheckPkg struct {
	pass     *analysis.Pass
	guards   map[*types.Var]guardInfo // annotated field -> its guard
	requires map[*types.Func][]string // annotated method -> receiver guards
}

func runLockcheck(pass *analysis.Pass) error {
	p := &lockcheckPkg{
		pass:     pass,
		guards:   map[*types.Var]guardInfo{},
		requires: map[*types.Func][]string{},
	}
	for _, f := range pass.Files {
		p.collectGuards(f)
	}
	for _, f := range pass.Files {
		p.collectRequires(f)
	}
	if len(p.guards) == 0 && len(p.requires) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			p.checkFunc(fn)
		}
	}
	return nil
}

// directiveArgs returns the whitespace-separated arguments of the first
// comment in the group starting with the directive, and whether one was
// found.
func directiveArgs(cg *ast.CommentGroup, directive string) ([]string, *ast.Comment, bool) {
	if cg == nil {
		return nil, nil, false
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, directive) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directive)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //c56:guardedbyX — a different word
		}
		// A trailing comment (fixture `// want` pins, prose) is not part of
		// the directive.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		return strings.Fields(rest), c, true
	}
	return nil, nil, false
}

// mutexKind classifies t: 0 for non-mutex, 1 for sync.Mutex, 2 for
// sync.RWMutex. A pointer to either counts.
func mutexKind(t types.Type) int {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0
	}
	switch named.Obj().Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// collectGuards indexes every //c56:guardedby field annotation in f,
// validating that the named guard is a sibling mutex field.
func (p *lockcheckPkg) collectGuards(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			args, c, found := directiveArgs(field.Doc, guardedByDirective)
			if !found {
				args, c, found = directiveArgs(field.Comment, guardedByDirective)
			}
			if !found {
				continue
			}
			if len(args) != 1 {
				p.pass.Reportf(c.Pos(), "malformed annotation: want `%s <mutex field>`", guardedByDirective)
				continue
			}
			guard := args[0]
			selfGuard := false
			for _, name := range field.Names {
				if name.Name == guard {
					p.pass.Reportf(c.Pos(), "%s %s: a mutex cannot guard itself", guardedByDirective, guard)
					selfGuard = true
				}
			}
			if selfGuard {
				continue
			}
			kind := p.siblingMutex(st, guard)
			if kind == 0 {
				p.pass.Reportf(c.Pos(), "%s %s: no sibling sync.Mutex or sync.RWMutex field named %q",
					guardedByDirective, guard, guard)
				continue
			}
			if len(field.Names) == 0 {
				p.pass.Reportf(c.Pos(), "%s cannot annotate an embedded field", guardedByDirective)
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.pass.TypesInfo.Defs[name].(*types.Var); ok {
					p.guards[v] = guardInfo{guard: guard, rw: kind == 2}
				}
			}
		}
		return true
	})
}

// siblingMutex returns the mutexKind of the field named guard in st, or 0.
func (p *lockcheckPkg) siblingMutex(st *ast.StructType, guard string) int {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			if v, ok := p.pass.TypesInfo.Defs[name].(*types.Var); ok {
				return mutexKind(v.Type())
			}
		}
	}
	return 0
}

// collectRequires indexes every //c56:requires method annotation in f,
// validating that each named guard is a mutex field of the receiver.
func (p *lockcheckPkg) collectRequires(f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		args, c, found := directiveArgs(fn.Doc, requiresDirective)
		if !found {
			continue
		}
		if len(args) == 0 {
			p.pass.Reportf(c.Pos(), "malformed annotation: want `%s <mutex field> ...`", requiresDirective)
			continue
		}
		obj, _ := p.pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if obj == nil {
			continue
		}
		recv := recvStruct(obj)
		if recv == nil {
			p.pass.Reportf(c.Pos(), "%s requires a method with a named struct receiver", requiresDirective)
			continue
		}
		valid := true
		for _, g := range args {
			if fieldMutexKind(recv, g) == 0 {
				p.pass.Reportf(c.Pos(), "%s %s: receiver has no sync.Mutex or sync.RWMutex field named %q",
					requiresDirective, g, g)
				valid = false
			}
		}
		if valid {
			p.requires[obj] = args
		}
	}
}

// recvStruct returns the struct type underlying fn's receiver, or nil.
func recvStruct(fn *types.Func) *types.Struct {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// fieldMutexKind returns the mutexKind of st's field named name, or 0.
func fieldMutexKind(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return mutexKind(st.Field(i).Type())
		}
	}
	return 0
}

// checkFunc walks one function declaration's body.
func (p *lockcheckPkg) checkFunc(fn *ast.FuncDecl) {
	w := &lockWalker{pkg: p}
	entry := newLockState()
	// A //c56:requires method starts with the named receiver mutexes held.
	if obj, _ := p.pass.TypesInfo.Defs[fn.Name].(*types.Func); obj != nil {
		if guards, ok := p.requires[obj]; ok && fn.Recv != nil && len(fn.Recv.List) > 0 {
			names := fn.Recv.List[0].Names
			if len(names) > 0 {
				if recv := p.pass.TypesInfo.Defs[names[0]]; recv != nil {
					for _, g := range guards {
						entry.held[lockKey{recv, g}] = lockExclusive
					}
				}
			}
		}
	}
	w.walkBody(fn.Body, entry)
}

// lockWalker walks one function body (and, recursively, each function
// literal it contains with a fresh empty state).
type lockWalker struct {
	pkg   *lockcheckPkg
	fresh map[types.Object]bool // locals built from composite literals/new in this body
	loops []*loopFrame          // enclosing breakable constructs, innermost last
	mute  int                   // >0 while re-walking loop bodies for the fixed point
}

// loopFrame collects the states carried out of a loop (break) or to its
// back edge (continue). Switch/select frames accept break only.
type loopFrame struct {
	isLoop    bool
	breaks    []lockState
	continues []lockState
}

func (w *lockWalker) walkBody(body *ast.BlockStmt, entry lockState) {
	w.fresh = map[types.Object]bool{}
	w.walkStmts(body.List, entry)
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	if w.mute > 0 {
		return
	}
	w.pkg.pass.Reportf(pos, format, args...)
}

// resolveChain resolves a selector expression (or plain identifier) to its
// root variable and dotted field path. It fails (ok=false) for chains that
// pass through calls, indexing or anything else that breaks instance
// identity.
func (w *lockWalker) resolveChain(e ast.Expr) (root types.Object, path []string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(w.pkg.pass.TypesInfo, e)
		if _, isVar := obj.(*types.Var); !isVar {
			return nil, nil, false
		}
		return obj, nil, true
	case *ast.SelectorExpr:
		sel, found := w.pkg.pass.TypesInfo.Selections[e]
		if !found || sel.Kind() != types.FieldVal {
			return nil, nil, false
		}
		root, path, ok = w.resolveChain(e.X)
		if !ok {
			return nil, nil, false
		}
		return root, append(path, e.Sel.Name), true
	case *ast.StarExpr:
		return w.resolveChain(e.X)
	}
	return nil, nil, false
}

// checkAccess validates one guarded-field access site.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, info guardInfo, write bool, st lockState) {
	root, path, ok := w.resolveChain(sel)
	if !ok || w.fresh[root] {
		return
	}
	guardPath := append(append([]string{}, path[:len(path)-1]...), info.guard)
	key := lockKey{root, strings.Join(guardPath, ".")}
	mode := st.held[key]
	field := strings.Join(path, ".")
	switch {
	case mode == 0:
		verb := "read"
		if write {
			verb = "written"
		}
		w.report(sel.Sel.Pos(), "%s %s without holding %s (field is marked %s %s)",
			field, verb, key.path, guardedByDirective, info.guard)
	case write && mode < lockExclusive:
		w.report(sel.Sel.Pos(), "%s written while %s is held only for reading; use Lock, not RLock",
			field, key.path)
	}
}

// scanReads reports every guarded-field read under e, not descending into
// function literals (their bodies are walked separately with an empty
// held set).
func (w *lockWalker) scanReads(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := w.pkg.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
				if info, guarded := w.pkg.guards[v]; guarded {
					w.checkAccess(sel, info, false, st)
					w.scanReads(sel.X, st)
					return false
				}
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkRequiresCall(call, st)
		}
		return true
	})
}

// scanWrite walks an assignment target: the selector spine is written, the
// index expressions inside it are read.
func (w *lockWalker) scanWrite(e ast.Expr, st lockState) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		// plain local/global write; nothing guarded
	case *ast.SelectorExpr:
		if v, ok := w.pkg.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			if info, guarded := w.pkg.guards[v]; guarded {
				w.checkAccess(e, info, true, st)
			}
		}
		w.scanWrite(e.X, st)
	case *ast.IndexExpr:
		w.scanWrite(e.X, st)
		w.scanReads(e.Index, st)
	case *ast.StarExpr:
		// *p = v writes the pointee; p itself is read.
		w.scanReads(e.X, st)
	default:
		w.scanReads(e, st)
	}
}

// checkRequiresCall verifies a call to a //c56:requires method holds the
// required receiver mutexes exclusively at the call site.
func (w *lockWalker) checkRequiresCall(call *ast.CallExpr, st lockState) {
	obj, ok := calleeObj(w.pkg.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	guards, annotated := w.pkg.requires[obj]
	if !annotated {
		return
	}
	selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, path, ok := w.resolveChain(selExpr.X)
	if !ok || w.fresh[root] {
		return
	}
	for _, g := range guards {
		key := lockKey{root, strings.Join(append(append([]string{}, path...), g), ".")}
		if st.held[key] < lockExclusive {
			w.report(call.Pos(), "call to %s requires holding %s exclusively (%s %s)",
				obj.Name(), key.path, requiresDirective, g)
		}
	}
}

// lockOp classifies a statement as a mutex operation on a resolvable
// instance: returns the key, the method name, and whether it matched.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	fn, ok := w.pkg.pass.TypesInfo.Uses[selExpr.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || mutexKind(sig.Recv().Type()) == 0 {
		return lockKey{}, "", false
	}
	root, path, ok := w.resolveChain(selExpr.X)
	if !ok {
		return lockKey{}, "", false
	}
	return lockKey{root, strings.Join(path, ".")}, fn.Name(), true
}

// applyLockOp updates st for a mutex call in statement position.
func applyLockOp(st lockState, key lockKey, op string) lockState {
	switch op {
	case "Lock":
		st.held[key] = lockExclusive
	case "RLock":
		if st.held[key] < lockRead {
			st.held[key] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(st.held, key)
	}
	return st
}

// noteFresh records locals bound to freshly constructed values (composite
// literals, new()) — constructor bodies mutate them before publication, so
// guarded-field checks do not apply.
func (w *lockWalker) noteFresh(lhs, rhs ast.Expr) {
	obj := identObj(w.pkg.pass.TypesInfo, lhs)
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == w.pkg.pass.Pkg.Scope() {
		return
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		w.fresh[obj] = true
		return
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			if _, isLit := ast.Unparen(rhs.X).(*ast.CompositeLit); isLit {
				w.fresh[obj] = true
				return
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
			if _, isBuiltin := w.pkg.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "new" {
				w.fresh[obj] = true
				return
			}
		}
	}
	// Rebinding a tracked local to anything else ends the exemption.
	delete(w.fresh, obj)
}

// walkFuncLits walks every function literal under n with a fresh walker
// and empty entry state: a closure may run on any goroutine at any time,
// so it can assume nothing about the creator's locks.
func (w *lockWalker) walkFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			inner := &lockWalker{pkg: w.pkg, mute: w.mute}
			inner.walkBody(lit.Body, newLockState())
			return false
		}
		return true
	})
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, st lockState) lockState {
	for _, s := range stmts {
		if st.terminated {
			return st
		}
		st = w.walkStmt(s, st)
	}
	return st
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) lockState {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			if key, op, isLock := w.lockOp(call); isLock {
				return applyLockOp(st, key, op)
			}
		}
		w.scanReads(stmt.X, st)
		w.walkFuncLits(stmt.X)
		return st
	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			w.scanReads(rhs, st)
			w.walkFuncLits(rhs)
		}
		for _, lhs := range stmt.Lhs {
			if stmt.Tok == token.ASSIGN || stmt.Tok == token.DEFINE {
				w.scanWrite(lhs, st)
			} else {
				// Compound assignment (+=, etc.): read and write.
				w.scanReads(lhs, st)
				w.scanWrite(lhs, st)
			}
		}
		if len(stmt.Lhs) == len(stmt.Rhs) {
			for i := range stmt.Lhs {
				w.noteFresh(stmt.Lhs[i], stmt.Rhs[i])
			}
		}
		return st
	case *ast.IncDecStmt:
		w.scanWrite(stmt.X, st)
		return st
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.scanReads(v, st)
					w.walkFuncLits(v)
				}
				if len(vs.Values) == 0 {
					// `var x T` locals are freshly zeroed and unshared.
					for _, name := range vs.Names {
						if obj := w.pkg.pass.TypesInfo.Defs[name]; obj != nil {
							w.fresh[obj] = true
						}
					}
				} else if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						w.noteFresh(ast.Expr(name), vs.Values[i])
					}
				}
			}
		}
		return st
	case *ast.DeferStmt:
		// Deferred mutex releases run at function exit: the lock stays held
		// for the rest of this path. Other deferred calls evaluate their
		// arguments now.
		if _, op, isLock := w.lockOp(stmt.Call); isLock {
			if op == "Unlock" || op == "RUnlock" {
				return st
			}
		}
		for _, arg := range stmt.Call.Args {
			w.scanReads(arg, st)
		}
		w.walkFuncLits(stmt.Call)
		return st
	case *ast.GoStmt:
		for _, arg := range stmt.Call.Args {
			w.scanReads(arg, st)
		}
		w.walkFuncLits(stmt.Call)
		return st
	case *ast.SendStmt:
		w.scanReads(stmt.Chan, st)
		w.scanReads(stmt.Value, st)
		w.walkFuncLits(stmt.Value)
		return st
	case *ast.ReturnStmt:
		for _, res := range stmt.Results {
			w.scanReads(res, st)
			w.walkFuncLits(res)
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		w.recordBranch(stmt, st)
		st = st.clone()
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return w.walkStmts(stmt.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(stmt.Stmt, st)
	case *ast.IfStmt:
		if stmt.Init != nil {
			st = w.walkStmt(stmt.Init, st)
		}
		w.scanReads(stmt.Cond, st)
		w.walkFuncLits(stmt.Cond)
		thenSt := w.walkStmts(stmt.Body.List, st.clone())
		elseSt := st.clone()
		if stmt.Else != nil {
			elseSt = w.walkStmt(stmt.Else, elseSt)
		}
		return joinStates([]lockState{thenSt, elseSt})
	case *ast.ForStmt:
		return w.walkLoop(stmt.Init, stmt.Cond, stmt.Post, stmt.Body, st)
	case *ast.RangeStmt:
		return w.walkRange(stmt, st)
	case *ast.SwitchStmt:
		return w.walkCases(stmt.Init, stmt.Tag, nil, stmt.Body, st)
	case *ast.TypeSwitchStmt:
		return w.walkCases(stmt.Init, nil, stmt.Assign, stmt.Body, st)
	case *ast.SelectStmt:
		return w.walkCases(nil, nil, nil, stmt.Body, st)
	default:
		return st
	}
}

// recordBranch files a break/continue state with the construct it exits.
// The target packages use no labeled branches; a labeled branch is filed
// with the innermost matching construct, which is exact for the unlabeled
// common case.
func (w *lockWalker) recordBranch(stmt *ast.BranchStmt, st lockState) {
	for i := len(w.loops) - 1; i >= 0; i-- {
		fr := w.loops[i]
		switch stmt.Tok {
		case token.BREAK:
			fr.breaks = append(fr.breaks, st.clone())
			return
		case token.CONTINUE:
			if fr.isLoop {
				fr.continues = append(fr.continues, st.clone())
				return
			}
		default:
			return // goto: out of scope, treat as terminated
		}
	}
}

// walkLoop analyzes a for loop. The body is iterated to a fixed point with
// reporting muted, so that a lock dropped on a back edge (bottom of the
// body, or a continue) is not assumed held on the next iteration; the
// final pass reports with the stable entry state. The post-loop state
// joins every break with the condition-false exits.
func (w *lockWalker) walkLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, st lockState) lockState {
	if init != nil {
		st = w.walkStmt(init, st)
	}

	run := func(entry lockState) (out lockState, fr *loopFrame) {
		fr = &loopFrame{isLoop: true}
		w.loops = append(w.loops, fr)
		out = w.walkStmts(body.List, entry.clone())
		if post != nil && !out.terminated {
			out = w.walkStmt(post, out)
		}
		w.loops = w.loops[:len(w.loops)-1]
		return out, fr
	}

	entry := st.clone()
	w.mute++
	for range 4 {
		out, fr := run(entry)
		next := intersect(entry, joinStates(append([]lockState{out}, fr.continues...)))
		nextState := lockState{held: next.held, terminated: false}
		if sameState(nextState, entry) {
			break
		}
		entry = nextState
	}
	w.mute--

	// The condition is evaluated on every entry to the body; check it with
	// the weakest (fixed-point) state so a lock dropped on a back edge is
	// not assumed for the re-check.
	w.scanReads(cond, entry)
	w.walkFuncLits(cond)

	out, fr := run(entry)
	exits := append([]lockState{}, fr.breaks...)
	if cond != nil {
		// The loop can exit when the condition fails: before the first
		// iteration (st) or after any iteration (out).
		exits = append(exits, st)
		if !out.terminated {
			exits = append(exits, out)
		}
	}
	return joinStates(exits)
}

// walkRange analyzes a range loop: the body may run zero times, and each
// iteration re-enters from the back edge.
func (w *lockWalker) walkRange(stmt *ast.RangeStmt, st lockState) lockState {
	w.scanReads(stmt.X, st)
	w.walkFuncLits(stmt.X)
	if stmt.Key != nil {
		w.scanWrite(stmt.Key, st)
	}
	if stmt.Value != nil {
		w.scanWrite(stmt.Value, st)
	}

	run := func(entry lockState) (out lockState, fr *loopFrame) {
		fr = &loopFrame{isLoop: true}
		w.loops = append(w.loops, fr)
		out = w.walkStmts(stmt.Body.List, entry.clone())
		w.loops = w.loops[:len(w.loops)-1]
		return out, fr
	}

	entry := st.clone()
	w.mute++
	for range 4 {
		out, fr := run(entry)
		next := intersect(entry, joinStates(append([]lockState{out}, fr.continues...)))
		nextState := lockState{held: next.held, terminated: false}
		if sameState(nextState, entry) {
			break
		}
		entry = nextState
	}
	w.mute--

	out, fr := run(entry)
	exits := append([]lockState{st}, fr.breaks...)
	if !out.terminated {
		exits = append(exits, out)
	}
	return joinStates(exits)
}

// walkCases analyzes switch/type-switch/select: every case runs from the
// dispatch state; break exits the construct with the current state; the
// result joins all falling-through arms (plus the no-case-taken path for
// a switch without default).
func (w *lockWalker) walkCases(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, st lockState) lockState {
	if init != nil {
		st = w.walkStmt(init, st)
	}
	w.scanReads(tag, st)
	w.walkFuncLits(tag)
	if assign != nil {
		st = w.walkStmt(assign, st)
	}

	fr := &loopFrame{isLoop: false}
	w.loops = append(w.loops, fr)
	hasDefault := false
	var outs []lockState
	for _, c := range body.List {
		var caseBody []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.scanReads(e, st)
			}
			caseBody = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
				caseBody = cc.Body
			} else {
				caseBody = append([]ast.Stmt{cc.Comm}, cc.Body...)
			}
		}
		outs = append(outs, w.walkStmts(caseBody, st.clone()))
	}
	w.loops = w.loops[:len(w.loops)-1]
	outs = append(outs, fr.breaks...)
	if !hasDefault {
		outs = append(outs, st)
	}
	return joinStates(outs)
}
