// Package analysistest runs internal/lint analyzers over fixture packages
// and checks their diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest workflow without the x/tools
// dependency.
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<importpath>/*.go.
// Imports inside fixtures resolve against the same tree, so fixture
// packages depend on small stubs of the real packages (the stubs reuse the
// production import paths, e.g. code56/internal/bufpool, so the analyzers'
// path matching is exercised exactly as in the real module). The import
// "unsafe" resolves to types.Unsafe; everything else must be stubbed —
// fixture loading is fully hermetic, with no go command and no network.
//
// Expectations are // want comments on the offending line:
//
//	buf := bufpool.Get(n) // want `rented at line \d+`
//
// Each quoted string is a regexp that must match exactly one diagnostic
// reported on that line; unmatched diagnostics and unsatisfied
// expectations both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"code56/internal/lint/analysis"
)

// TestData returns the absolute path of the test's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package below dir/src, applies the analyzer, and
// checks the diagnostics against the fixtures' // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loadedPkg{},
	}
	for _, path := range pkgPaths {
		p, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     p.files,
			Pkg:       p.pkg,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		// Apply the same //lint:allow filtering the driver applies, so
		// fixtures can cover the suppression mechanism too.
		allowed, bad := analysis.Suppressions(ld.fset, p.files)
		diags = append(diags, bad...)
		kept := diags[:0]
		for _, d := range diags {
			if !analysis.Suppressed(ld.fset, allowed, a.Name, d) {
				kept = append(kept, d)
			}
		}
		check(t, ld.fset, a, path, p.files, kept)
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture import paths below root, loading each package at
// most once. Stdlib fallback uses the source importer only if a path is
// not stubbed in the tree.
type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	stdlib  types.Importer
	loading []string // cycle detection
}

// Import implements types.Importer so the type-checker resolves fixture
// imports through the loader itself.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, err := ld.load(path); err == nil {
		return p.pkg, nil
	} else if _, statErr := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); statErr == nil {
		return nil, err // the stub exists but is broken: surface that error
	}
	// Not stubbed: fall back to compiling the real standard library
	// package from GOROOT source.
	if ld.stdlib == nil {
		ld.stdlib = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.stdlib.Import(path)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	for _, active := range ld.loading {
		if active == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = p
	return p, nil
}

// expectation is one // want regexp at one file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// check matches diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkgPath string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					} else {
						raw = strings.ReplaceAll(raw, `\"`, `"`)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic at %s:%d: %s", pkgPath, a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no %s diagnostic at %s:%d matching %q", pkgPath, a.Name, w.file, w.line, w.raw)
		}
	}
}
