package lint

import (
	"go/ast"
	"go/build/constraint"
	"path/filepath"
	"strconv"

	"code56/internal/lint/analysis"
)

// wideKernelFile is the single file allowed to import unsafe: the
// alignment-gated wide XOR kernel.
const wideKernelFile = "kernel_wide.go"

// UnsafeGate rejects unsafe outside the wide kernel.
//
// The repository's portability story is binary: build with -tags purego
// and no unsafe code is compiled at all; build normally and the only
// unsafe in the module is the wide kernel's aligned []byte→[]uint64
// reinterpretation, which is audited together with its alignment guard.
// Any other unsafe use — or a reflect.SliceHeader/StringHeader
// reconstruction, the classic route around the compiler's safety checks —
// breaks that audit boundary silently. The analyzer therefore:
//
//   - reports any import of unsafe outside internal/xorblk/kernel_wide.go;
//   - requires kernel_wide.go itself to carry a build constraint that
//     excludes it under the purego tag, so the portable build stays free
//     of unsafe by construction;
//   - reports any use of reflect.SliceHeader or reflect.StringHeader
//     anywhere (they are unsafe-in-disguise and have no legitimate use
//     here).
var UnsafeGate = &analysis.Analyzer{
	Name: "unsafegate",
	Doc: "reject unsafe and reflect.SliceHeader outside internal/xorblk's " +
		"wide kernel, and require the kernel file's !purego build gate",
	Run: runUnsafeGate,
}

func runUnsafeGate(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Package).Filename)
		isWideKernel := pass.Pkg.Path() == xorblkPath && filename == wideKernelFile
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			if !isWideKernel {
				pass.Reportf(imp.Pos(), "unsafe is only permitted in %s/%s (the alignment-gated wide kernel); "+
					"use the portable kernels or extend xorblk instead", xorblkPath, wideKernelFile)
				continue
			}
			if !excludedUnderPurego(f) {
				pass.Reportf(imp.Pos(), "%s imports unsafe but lacks a build constraint excluding it under "+
					"the purego tag (expected //go:build !purego)", wideKernelFile)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "SliceHeader" && sel.Sel.Name != "StringHeader" {
				return true
			}
			obj := identObj(pass.TypesInfo, sel.Sel)
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "reflect" {
				pass.Reportf(sel.Pos(), "reflect.%s is unsafe in disguise; it is not permitted anywhere in this module", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// excludedUnderPurego reports whether the file carries a build constraint
// that evaluates to false when the purego tag is set.
func excludedUnderPurego(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(func(tag string) bool { return tag == "purego" }) {
				return true
			}
		}
	}
	return false
}
