package lint

import (
	"go/ast"
	"go/build/constraint"
	"path/filepath"
	"strconv"
	"strings"

	"code56/internal/lint/analysis"
)

// sanctionedUnsafe maps the xorblk files allowed to import unsafe to the
// build tags each must be excluded under. kernel_wide.go is the
// alignment-gated wide kernel (absent from purego builds); the per-arch
// dispatch files sit above it and must additionally vanish under noasm so
// that tag removes every assembly-adjacent path at once.
var sanctionedUnsafe = map[string][]string{
	"kernel_wide.go":      {"purego"},
	"dispatch_amd64.go":   {"purego", "noasm"},
	"dispatch_arm64.go":   {"purego", "noasm"},
	"dispatch_generic.go": {"purego"},
}

// stubGateTags are the build tags every assembly stub file must be
// excluded under: -tags purego strips all unsafe and assembly, -tags noasm
// strips assembly while keeping the wide kernels.
var stubGateTags = []string{"purego", "noasm"}

// UnsafeGate rejects unsafe — and assembly, its close cousin — outside the
// sanctioned xorblk kernel files.
//
// The repository's portability story is binary: build with -tags purego
// and no unsafe or assembly code is compiled at all; build with -tags
// noasm and the assembly tiers disappear while the audited wide kernel
// remains; build normally and the only unsafe in the module lives in
// internal/xorblk's sanctioned kernel/dispatch files. The analyzer
// therefore:
//
//   - reports any import of unsafe outside the sanctioned files
//     (sanctionedUnsafe), and requires each sanctioned file to carry a
//     build constraint excluding it under that file's required tags, so
//     the portable builds stay unsafe-free by construction;
//   - reports any assembly stub — a body-less function declaration —
//     outside internal/xorblk, and requires stub-bearing xorblk files to
//     be excluded under both the purego and noasm tags;
//   - reports any use of reflect.SliceHeader or reflect.StringHeader
//     anywhere (they are unsafe-in-disguise and have no legitimate use
//     here).
//
// Sanctioned files need no //lint:allow annotations; everything else does
// not get them either — unsafe and assembly grow only by extending the
// sanction table, which is itself reviewed with the kernels.
var UnsafeGate = &analysis.Analyzer{
	Name: "unsafegate",
	Doc: "reject unsafe imports, assembly stubs and reflect.SliceHeader outside " +
		"internal/xorblk's sanctioned kernel files, and require those files' " +
		"purego/noasm build gates",
	Run: runUnsafeGate,
}

func runUnsafeGate(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Package).Filename)
		inXorblk := pass.Pkg.Path() == xorblkPath
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			tags, sanctioned := sanctionedUnsafe[filename]
			if !inXorblk || !sanctioned {
				pass.Reportf(imp.Pos(), "unsafe is only permitted in %s's sanctioned kernel files; "+
					"use the portable kernels or extend xorblk instead", xorblkPath)
				continue
			}
			for _, tag := range tags {
				if !excludedUnderTag(f, tag) {
					pass.Reportf(imp.Pos(), "%s imports unsafe but lacks a build constraint excluding it under "+
						"the %s tag (expected //go:build with !%s)", filename, tag, tag)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body != nil {
				continue
			}
			if !inXorblk {
				pass.Reportf(fd.Pos(), "assembly stub (body-less function) outside %s; "+
					"SIMD kernels live behind xorblk's dispatch so every caller inherits "+
					"the purego/noasm fallbacks", xorblkPath)
				continue
			}
			for _, tag := range stubGateTags {
				if !excludedUnderTag(f, tag) {
					pass.Reportf(fd.Pos(), "%s declares an assembly stub but lacks a build constraint "+
						"excluding it under the %s tag (expected //go:build !purego && !noasm)", filename, tag)
					break
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "SliceHeader" && sel.Sel.Name != "StringHeader" {
				return true
			}
			obj := identObj(pass.TypesInfo, sel.Sel)
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "reflect" {
				pass.Reportf(sel.Pos(), "reflect.%s is unsafe in disguise; it is not permitted anywhere in this module", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// excludedUnderTag reports whether the file carries a build constraint
// that evaluates to false when the given tag is set (and all other tags,
// including GOOS/GOARCH ones, are unset — the strictest reading, so
// arch-specific files still need the explicit !tag term).
func excludedUnderTag(f *ast.File, tag string) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(func(t string) bool { return t == tag }) {
				return true
			}
		}
	}
	return false
}

// isTestFile reports whether the file is a _test.go file (by filename).
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go")
}
