package lint

import (
	"testing"

	"code56/internal/lint/analysistest"
)

// TestBufPoolPair covers leaks (fallthrough, early return, per-iteration),
// discarded rentals, the clean defer/explicit/alias shapes, every
// ownership-transfer form, and the regression fixtures: the PR 3 heal
// leak and the branch-join shapes from migrate and raid6 that must stay
// clean.
func TestBufPoolPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), BufPoolPair, "bufpoolpair")
}
