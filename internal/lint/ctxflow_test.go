package lint

import (
	"testing"

	"code56/internal/lint/analysistest"
)

// TestCtxFlow covers ctx threading into ForEach/ForEachBatch/XorMulti
// (direct, derived and closure-captured), the serial-wrapper Background
// shape, manufactured/stale contexts, the context.TODO ban, the PR 3
// detached-heal regression, and the package-main exemption.
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), CtxFlow,
		"ctxflow", "ctxflowmain")
}
