package lint

import (
	"path/filepath"
	"testing"

	"code56/internal/lint/analysistest"
)

// TestUnsafeGate covers the unsafe-import rejection and the reflect header
// ban, and asserts the gated wide-kernel fixture stays clean.
func TestUnsafeGate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), UnsafeGate,
		"unsafegate", "code56/internal/xorblk")
}

// TestUnsafeGateMissingConstraint loads an alternate tree whose
// kernel_wide.go lacks the !purego gate: the sanctioned file must still
// carry the build constraint.
func TestUnsafeGateMissingConstraint(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "nogate"), UnsafeGate,
		"code56/internal/xorblk")
}
