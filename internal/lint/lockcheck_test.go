package lint_test

import (
	"testing"

	"code56/internal/lint"
	"code56/internal/lint/analysistest"
)

// TestLockcheck runs the lockcheck fixtures: guarded-field access modes,
// path-sensitive lock tracking (defer, branches, loops, break/continue),
// requires propagation, instance precision, annotation validation, and
// the PR 3 heal-vs-write regression shape (regression.go).
func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Lockcheck, "lockcheck")
}
