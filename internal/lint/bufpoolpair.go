package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"code56/internal/lint/analysis"
)

// BufPoolPair flow-checks that every buffer rented from
// code56/internal/bufpool (Get/GetZero) is returned with Put on every path
// out of the renting function, or explicitly hands ownership elsewhere.
//
// A leaked rental is invisible at runtime — the GC quietly reclaims the
// buffer — but it defeats the pool: steady-state hot paths start
// allocating again (regressing PR 4's zero-alloc guarantees) and the
// bufpool.bytes_in_flight gauge drifts upward forever, poisoning leak
// assertions in tests.
//
// The checker walks each renting function path-sensitively:
//
//   - `defer bufpool.Put(b)` (directly or inside a deferred closure)
//     releases every later exit on that path; an early return between the
//     Get and the defer is still reported.
//   - an explicit `bufpool.Put(b)` releases the paths it dominates; a
//     return reachable without passing a Put is reported.
//   - ownership transfers end tracking without a report: returning the
//     buffer, appending it to a container, storing it in a field, map,
//     global or composite literal, sending it on a channel, or capturing
//     it in a non-deferred closure. Borrowing — passing the buffer as a
//     plain call argument (disk reads, xorblk kernels) — does not.
//   - a rental whose result is discarded (`_ =` or a bare expression
//     statement) is always reported.
//
// If branches are merged conservatively (released only when every branch
// released), loop bodies are checked per iteration, and aliases created by
// `w := b` or re-slicing are tracked with the original.
var BufPoolPair = &analysis.Analyzer{
	Name: "bufpoolpair",
	Doc: "check that every bufpool.Get/GetZero reaches bufpool.Put on all " +
		"return paths (defer or explicit) or explicitly transfers ownership",
	Run: runBufPoolPair,
}

func runBufPoolPair(pass *analysis.Pass) error {
	if pass.Pkg.Path() == bufpoolPath {
		return nil
	}
	for _, f := range pass.Files {
		// Analyze every function body (declarations and literals); rentals
		// are attributed to the innermost function they occur in.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		for _, body := range bodies {
			checkBody(pass, body)
		}
	}
	return nil
}

// isRentCall reports whether call is bufpool.Get or bufpool.GetZero.
func isRentCall(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, bufpoolPath, "Get") ||
		isPkgFunc(info, call, bufpoolPath, "GetZero")
}

// checkBody finds the rentals whose innermost enclosing function body is
// body and runs the path walker once per rental.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var rentals []*ast.AssignStmt
	skipNested(body, func(n ast.Node) {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isRentCall(pass.TypesInfo, call) {
					continue
				}
				if i >= len(stmt.Lhs) {
					continue
				}
				if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "bufpool rental discarded; the buffer can never be Put back")
					continue
				}
				if _, ok := stmt.Lhs[i].(*ast.Ident); ok && len(stmt.Lhs) == len(stmt.Rhs) {
					rentals = append(rentals, stmt)
				}
				// Rentals stored directly into fields/indexes transfer
				// ownership at birth; nothing to track.
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && isRentCall(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "bufpool rental discarded; the buffer can never be Put back")
			}
		}
	})
	for _, r := range rentals {
		t := &rentTracker{pass: pass, rental: r, aliases: map[types.Object]bool{}}
		st := t.walkStmts(body.List, rentState{})
		if st.started && !st.terminated && !st.released && !st.escaped {
			t.report(body.End())
		}
	}
}

// skipNested walks the statements of one function body, calling fn for
// every node but not descending into nested function literals.
func skipNested(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// rentState is the tracked condition of one rental along one control-flow
// path.
type rentState struct {
	started    bool // execution has passed the Get
	released   bool // a Put (or registered deferred Put) covers this path
	escaped    bool // ownership left the function; stop tracking
	terminated bool // the path ended (return/branch); no fallthrough
}

// obligation reports whether the state still owes the pool a Put: the
// rental happened on this path and has neither been released nor handed
// off.
func (st rentState) obligation() bool {
	return st.started && !st.released && !st.escaped
}

// merge combines the fallthrough states of sibling branches. The join is
// obligation-based: a branch where the rental never happened (or already
// released/escaped it) owes nothing, so it must not resurrect an
// obligation the other branch discharged — but if any falling-through
// branch is still live, the joined path is live.
func merge(a, b rentState) rentState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := rentState{started: a.started || b.started}
	if !a.obligation() && !b.obligation() {
		// No branch owes a Put; mark the join discharged.
		out.escaped = out.started
	}
	return out
}

// rentTracker walks one function body for one rental statement.
type rentTracker struct {
	pass     *analysis.Pass
	rental   *ast.AssignStmt
	aliases  map[types.Object]bool // the rented var and its local aliases
	reported bool
}

func (t *rentTracker) report(pos token.Pos) {
	if t.reported {
		return
	}
	t.reported = true
	rentPos := t.pass.Fset.Position(t.rental.Pos())
	t.pass.Reportf(pos, "bufpool buffer rented at line %d may not be returned to the pool on this path; "+
		"add `defer bufpool.Put` after the Get or Put it before returning", rentPos.Line)
}

// tracked reports whether e denotes the rented buffer: the variable itself
// or a re-slice of it.
func (t *rentTracker) tracked(e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return t.tracked(sl.X)
	}
	obj := identObj(t.pass.TypesInfo, e)
	return obj != nil && t.aliases[obj]
}

// mentionsTracked reports whether any identifier under e (not descending
// into function literals) resolves to a tracked alias.
func (t *rentTracker) mentionsTracked(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil && t.aliases[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// putsTracked reports whether n contains a bufpool.Put of a tracked alias,
// not descending into nested function literals.
func (t *rentTracker) putsTracked(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok &&
			isPkgFunc(t.pass.TypesInfo, call, bufpoolPath, "Put") &&
			len(call.Args) == 1 && t.tracked(call.Args[0]) {
			found = true
		}
		return !found
	})
	return found
}

// capturedByFuncLit reports whether a function literal under n captures a
// tracked alias.
func (t *rentTracker) capturedByFuncLit(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := m.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					if obj := t.pass.TypesInfo.Uses[id]; obj != nil && t.aliases[obj] {
						found = true
					}
				}
				return !found
			})
			return false
		}
		return true
	})
	return found
}

func (t *rentTracker) walkStmts(stmts []ast.Stmt, st rentState) rentState {
	for _, s := range stmts {
		if st.terminated {
			return st
		}
		st = t.walkStmt(s, st)
	}
	return st
}

func (t *rentTracker) walkStmt(s ast.Stmt, st rentState) rentState {
	switch stmt := s.(type) {
	case *ast.AssignStmt:
		if stmt == t.rental {
			st.started = true
			st.released = false
			st.escaped = false
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok && isRentCall(t.pass.TypesInfo, call) && i < len(stmt.Lhs) {
					if obj := identObj(t.pass.TypesInfo, stmt.Lhs[i]); obj != nil {
						t.aliases[obj] = true
					}
				}
			}
			return st
		}
		if !st.started || st.escaped {
			return st
		}
		return t.assignEffect(stmt, st)
	case *ast.ExprStmt:
		if st.started && !st.escaped {
			if t.putsTracked(stmt) {
				st.released = true
			} else if t.capturedByFuncLit(stmt) {
				st.escaped = true
			}
		}
		return st
	case *ast.DeferStmt:
		if !st.started || st.escaped {
			return st
		}
		// A deferred Put (or a deferred cleanup that receives or captures
		// the buffer) covers every later exit of this path.
		if t.putsTracked(stmt.Call) || t.capturedByFuncLit(stmt) {
			st.released = true
			return st
		}
		for _, arg := range stmt.Call.Args {
			if t.tracked(arg) || t.mentionsTracked(arg) {
				st.released = true // deferred hand-off to a cleanup helper
				return st
			}
		}
		return st
	case *ast.GoStmt:
		if st.started && !st.escaped &&
			(t.capturedByFuncLit(stmt) || t.mentionsTracked(stmt.Call)) {
			st.escaped = true
		}
		return st
	case *ast.SendStmt:
		if st.started && !st.escaped && t.mentionsTracked(stmt.Value) {
			st.escaped = true
		}
		return st
	case *ast.ReturnStmt:
		if st.started && !st.escaped && !st.released {
			returned := false
			for _, res := range stmt.Results {
				if t.mentionsTracked(res) || t.capturedByFuncLit(res) {
					returned = true
					break
				}
			}
			if !returned {
				t.report(stmt.Pos())
			}
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat the path as
		// ended here rather than guessing where it resumes.
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return t.walkStmts(stmt.List, st)
	case *ast.LabeledStmt:
		return t.walkStmt(stmt.Stmt, st)
	case *ast.IfStmt:
		if stmt.Init != nil {
			st = t.walkStmt(stmt.Init, st)
		}
		thenSt := t.walkStmts(stmt.Body.List, st)
		elseSt := st
		if stmt.Else != nil {
			elseSt = t.walkStmt(stmt.Else, st)
		}
		return merge(thenSt, elseSt)
	case *ast.ForStmt:
		return t.walkLoop(stmt.Init, stmt.Cond, stmt.Post, stmt.Body, st)
	case *ast.RangeStmt:
		return t.walkLoop(nil, stmt.X, nil, stmt.Body, st)
	case *ast.SwitchStmt:
		return t.walkCases(stmt.Init, stmt.Tag, stmt.Body, st)
	case *ast.TypeSwitchStmt:
		return t.walkCases(stmt.Init, nil, stmt.Body, st)
	case *ast.SelectStmt:
		return t.walkCases(nil, nil, stmt.Body, st)
	default:
		// Declarations and other simple statements: only closure capture
		// can change the tracking state.
		if st.started && !st.escaped && t.capturedByFuncLit(s) {
			st.escaped = true
		}
		return st
	}
}

// assignEffect applies a non-rental assignment to the state: aliasing,
// container stores and field/global stores.
func (t *rentTracker) assignEffect(stmt *ast.AssignStmt, st rentState) rentState {
	if t.putsTracked(stmt) { // e.g. n, err := f(bufpool.Put(b)...) — unusual but possible
		st.released = true
	}
	for i, rhs := range stmt.Rhs {
		rhs = ast.Unparen(rhs)
		var lhs ast.Expr
		if len(stmt.Lhs) == len(stmt.Rhs) {
			lhs = stmt.Lhs[i]
		}
		switch {
		case t.tracked(rhs):
			// Pure alias (w := b, w := b[:n]): track the new name too if it
			// lands in a plain local; anything else is a store that moves
			// ownership out of the function's hands.
			if lhs != nil {
				if obj := identObj(t.pass.TypesInfo, lhs); obj != nil && obj.Parent() != t.pass.Pkg.Scope() {
					t.aliases[obj] = true
					continue
				}
			}
			st.escaped = true
		case t.mentionsTracked(rhs):
			switch rhs := rhs.(type) {
			case *ast.CallExpr:
				// append(xs, b) and friends retain the buffer in a
				// container; a plain f(b) only borrows it.
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "append" {
					st.escaped = true
				}
			case *ast.CompositeLit:
				st.escaped = true
			}
		case t.capturedByFuncLit(rhs):
			st.escaped = true
		}
		// A store of the buffer through an index/field/deref on the LHS
		// (m[k] = b, s.buf = b, *p = b) transfers ownership.
		if lhs != nil && t.mentionsTracked(rhs) {
			switch ast.Unparen(lhs).(type) {
			case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
				st.escaped = true
			}
		}
	}
	return st
}

// walkLoop evaluates a loop body once from the pre-state. Rentals made
// inside the body must be released (or escape) by the end of one
// iteration; rentals made before the loop keep their pre-loop state
// afterwards, since the body may run zero times.
func (t *rentTracker) walkLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, st rentState) rentState {
	if init != nil {
		st = t.walkStmt(init, st)
	}
	if st.started && !st.escaped && cond != nil && t.capturedByFuncLit(cond) {
		st.escaped = true
	}
	bodySt := t.walkStmts(body.List, st)
	if post != nil && !bodySt.terminated {
		bodySt = t.walkStmt(post, bodySt)
	}
	if bodySt.started && !st.started && !bodySt.terminated && !bodySt.released && !bodySt.escaped {
		// The rental happened inside this iteration and survived to the
		// bottom of the loop body unreleased: every iteration leaks one
		// buffer.
		t.report(body.End())
	}
	if !st.started && bodySt.started {
		// Track post-loop only as "maybe rented": conservative merge keeps
		// the pre-loop view (zero iterations) — the per-iteration check
		// above already enforced the body.
		return st
	}
	return merge(st, bodySt)
}

// walkCases evaluates switch/type-switch/select bodies: every case starts
// from the dispatch state and the fallthrough result is the conservative
// merge, including the no-case-taken path for switches without a default.
func (t *rentTracker) walkCases(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st rentState) rentState {
	if init != nil {
		st = t.walkStmt(init, st)
	}
	if st.started && !st.escaped && tag != nil && t.capturedByFuncLit(tag) {
		st.escaped = true
	}
	hasDefault := false
	out := rentState{terminated: true}
	for _, c := range body.List {
		var caseBody []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			caseBody = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				// The communication op itself may store the buffer.
				caseBody = append([]ast.Stmt{cc.Comm}, cc.Body...)
			}
		}
		out = merge(out, t.walkStmts(caseBody, st))
	}
	if !hasDefault {
		out = merge(out, st)
	}
	return out
}
