// Package fleet answers the paper's opening question at deployment scale:
// "For a large data center based on RAID-5 arrays which has run a few
// years, how to maintain its high reliability?" It models a fleet of aging
// RAID-5 arrays, scores each array's data-loss exposure with the Markov
// MTTDL model (fed by the paper's Table I failure rates), prices each
// migration with the conversion planner and disk simulator, and schedules
// migrations under a conversion-bandwidth budget so that the highest
// risk-reduction-per-hour conversions run first.
package fleet

import (
	"fmt"
	"sort"

	"code56/internal/disksim"
	"code56/internal/migrate"
	"code56/internal/mttdl"
	"code56/internal/raid5"
	"code56/internal/trace"
)

// AFRByAge returns the paper's Table I annualized failure rate for a disk
// age in years (clamped to the table's range).
func AFRByAge(years int) float64 {
	table := []float64{0.017, 0.017, 0.081, 0.086, 0.058, 0.072}
	if years < 1 {
		years = 1
	}
	if years > 5 {
		years = 5
	}
	return table[years]
}

// ArraySpec describes one RAID-5 array in the fleet.
type ArraySpec struct {
	// Name identifies the array.
	Name string
	// Disks is the RAID-5 disk count.
	Disks int
	// AgeYears is the disks' age (drives the Table I AFR).
	AgeYears int
	// DataBlocks is the array's data block count.
	DataBlocks int
	// BlockSize in bytes.
	BlockSize int
	// MTTRHours is the rebuild time for one disk.
	MTTRHours float64
}

// Validate checks the spec.
func (s ArraySpec) Validate() error {
	if s.Disks < 3 {
		return fmt.Errorf("fleet: array %q needs >= 3 disks", s.Name)
	}
	if s.DataBlocks <= 0 || s.BlockSize <= 0 {
		return fmt.Errorf("fleet: array %q needs positive size", s.Name)
	}
	if s.MTTRHours <= 0 {
		return fmt.Errorf("fleet: array %q needs positive MTTR", s.Name)
	}
	return nil
}

// Assessment is the risk/cost evaluation of migrating one array.
type Assessment struct {
	Spec ArraySpec
	// AFR is the Table I rate used.
	AFR float64
	// LossBefore and LossAfter are the one-year data-loss probabilities
	// as RAID-5 and as the migrated Code 5-6 RAID-6.
	LossBefore, LossAfter float64
	// MigrationHours is the simulated online conversion time.
	MigrationHours float64
	// RiskReductionPerHour ranks the migration queue.
	RiskReductionPerHour float64
	// Plan is the underlying conversion plan (virtual disks as needed).
	Plan *migrate.Plan
}

// Assess evaluates one array: reliability before/after and the simulated
// conversion cost of the Code 5-6 direct migration.
func Assess(spec ArraySpec, model disksim.Model) (Assessment, error) {
	if err := spec.Validate(); err != nil {
		return Assessment{}, err
	}
	afr := AFRByAge(spec.AgeYears)
	r5, err := mttdl.RAID5Hours(mttdl.Params{Disks: spec.Disks, AFR: afr, MTTRHours: spec.MTTRHours})
	if err != nil {
		return Assessment{}, err
	}
	r6, err := mttdl.RAID6Hours(mttdl.Params{Disks: spec.Disks + 1, AFR: afr, MTTRHours: spec.MTTRHours})
	if err != nil {
		return Assessment{}, err
	}

	plan, err := migrate.NewVirtualPlan(spec.Disks, raid5.LeftAsymmetric)
	if err != nil {
		return Assessment{}, err
	}
	// Real arrays hold 10⁸–10⁹ blocks; replaying every request is
	// pointless because the conversion trace is periodic. Simulate a
	// representative sample and scale the makespan linearly.
	simBlocks := spec.DataBlocks
	scale := 1.0
	const sampleCap = 50000
	if simBlocks > sampleCap {
		scale = float64(spec.DataBlocks) / float64(sampleCap)
		simBlocks = sampleCap
	}
	phases := trace.FromPlan(plan, trace.Options{TotalDataBlocks: simBlocks, LoadBalanced: true})
	sim, err := disksim.New(spec.Disks+1, spec.BlockSize, model)
	if err != nil {
		return Assessment{}, err
	}
	st, err := sim.RunPhases(phases)
	if err != nil {
		return Assessment{}, err
	}

	a := Assessment{
		Spec:           spec,
		AFR:            afr,
		LossBefore:     mttdl.LossProbability(r5, 1),
		LossAfter:      mttdl.LossProbability(r6, 1),
		MigrationHours: st.Makespan * scale / 3.6e6, // ms -> h
		Plan:           plan,
	}
	if a.MigrationHours > 0 {
		a.RiskReductionPerHour = (a.LossBefore - a.LossAfter) / a.MigrationHours
	}
	return a, nil
}

// ScheduleEntry is one migration in the fleet plan.
type ScheduleEntry struct {
	Assessment
	// StartHour and EndHour place the migration on the serial
	// conversion-bandwidth timeline.
	StartHour, EndHour float64
}

// Schedule is the fleet migration plan.
type Schedule struct {
	// Entries are the scheduled migrations, in execution order.
	Entries []ScheduleEntry
	// Deferred are arrays assessed but not schedulable within the budget.
	Deferred []Assessment
	// TotalHours is the plan's span.
	TotalHours float64
	// ExpectedLossBefore / ExpectedLossAfter sum the one-year loss
	// probabilities fleet-wide (scheduled arrays only move to "after").
	ExpectedLossBefore, ExpectedLossAfter float64
}

// Plan assesses every array and greedily schedules migrations in order of
// risk reduction per conversion hour, within budgetHours of serial
// conversion bandwidth (<= 0 means unlimited).
func Plan(specs []ArraySpec, model disksim.Model, budgetHours float64) (Schedule, error) {
	var as []Assessment
	for _, s := range specs {
		a, err := Assess(s, model)
		if err != nil {
			return Schedule{}, err
		}
		as = append(as, a)
	}
	sort.SliceStable(as, func(i, j int) bool {
		return as[i].RiskReductionPerHour > as[j].RiskReductionPerHour
	})
	var sched Schedule
	now := 0.0
	for _, a := range as {
		sched.ExpectedLossBefore += a.LossBefore
		if budgetHours > 0 && now+a.MigrationHours > budgetHours {
			sched.Deferred = append(sched.Deferred, a)
			sched.ExpectedLossAfter += a.LossBefore
			continue
		}
		sched.Entries = append(sched.Entries, ScheduleEntry{
			Assessment: a,
			StartHour:  now,
			EndHour:    now + a.MigrationHours,
		})
		now += a.MigrationHours
		sched.ExpectedLossAfter += a.LossAfter
	}
	sched.TotalHours = now
	return sched, nil
}
