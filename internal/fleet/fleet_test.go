package fleet

import (
	"bytes"
	"math/rand"
	"testing"

	"code56/internal/disksim"
	"code56/internal/layout"
	"code56/internal/migrate"
	"code56/internal/raid5"
)

func specs() []ArraySpec {
	return []ArraySpec{
		{Name: "young-small", Disks: 4, AgeYears: 1, DataBlocks: 2000, BlockSize: 4096, MTTRHours: 24},
		{Name: "old-small", Disks: 4, AgeYears: 3, DataBlocks: 2000, BlockSize: 4096, MTTRHours: 24},
		{Name: "old-big", Disks: 8, AgeYears: 3, DataBlocks: 20000, BlockSize: 4096, MTTRHours: 24},
		{Name: "mid", Disks: 6, AgeYears: 4, DataBlocks: 8000, BlockSize: 4096, MTTRHours: 24},
	}
}

func TestAFRByAge(t *testing.T) {
	if AFRByAge(0) != AFRByAge(1) || AFRByAge(9) != AFRByAge(5) {
		t.Error("age clamping wrong")
	}
	if AFRByAge(3) != 0.086 {
		t.Errorf("year-3 AFR %v, want 0.086 (paper Table I)", AFRByAge(3))
	}
}

func TestAssess(t *testing.T) {
	a, err := Assess(specs()[1], disksim.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.LossAfter >= a.LossBefore {
		t.Errorf("migration did not reduce loss: %v -> %v", a.LossBefore, a.LossAfter)
	}
	if a.MigrationHours <= 0 {
		t.Errorf("migration hours %v", a.MigrationHours)
	}
	if a.RiskReductionPerHour <= 0 {
		t.Errorf("risk reduction per hour %v", a.RiskReductionPerHour)
	}
	if a.Plan == nil || a.Plan.Reused == 0 {
		t.Error("assessment should carry a reuse-based plan")
	}
	if _, err := Assess(ArraySpec{Name: "bad", Disks: 2}, disksim.DefaultModel()); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestPlanPriorities: old arrays outrank young ones, and among equally old
// arrays the cheaper (smaller) migration runs first under a tight budget.
func TestPlanPriorities(t *testing.T) {
	sched, err := Plan(specs(), disksim.DefaultModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Entries) != 4 || len(sched.Deferred) != 0 {
		t.Fatalf("unlimited budget: %d scheduled, %d deferred", len(sched.Entries), len(sched.Deferred))
	}
	order := map[string]int{}
	for i, e := range sched.Entries {
		order[e.Spec.Name] = i
	}
	if order["old-small"] > order["young-small"] {
		t.Error("old array scheduled after young one")
	}
	// The schedule is exactly the risk-reduction-per-hour order.
	for i := 1; i < len(sched.Entries); i++ {
		if sched.Entries[i].RiskReductionPerHour > sched.Entries[i-1].RiskReductionPerHour {
			t.Errorf("entry %d outranks its predecessor", i)
		}
	}
	// The young array is the least urgent.
	if order["young-small"] != len(sched.Entries)-1 {
		t.Error("young array should be scheduled last")
	}
	// The timeline is serial and gap-free.
	prevEnd := 0.0
	for _, e := range sched.Entries {
		if e.StartHour != prevEnd {
			t.Errorf("%s starts at %v, want %v", e.Spec.Name, e.StartHour, prevEnd)
		}
		prevEnd = e.EndHour
	}
	if sched.TotalHours != prevEnd {
		t.Errorf("total %v, want %v", sched.TotalHours, prevEnd)
	}
	if sched.ExpectedLossAfter >= sched.ExpectedLossBefore {
		t.Error("fleet-wide expected loss did not drop")
	}
}

func TestPlanBudget(t *testing.T) {
	unlimited, err := Plan(specs(), disksim.DefaultModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.TotalHours <= 0 {
		t.Fatal("degenerate schedule")
	}
	// Budget for roughly half the work: some arrays defer, and the
	// deferred ones are the lower-priority tail.
	tight, err := Plan(specs(), disksim.DefaultModel(), unlimited.TotalHours/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Deferred) == 0 {
		t.Fatal("tight budget deferred nothing")
	}
	if tight.TotalHours > unlimited.TotalHours/2 {
		t.Errorf("schedule %vh exceeds budget %vh", tight.TotalHours, unlimited.TotalHours/2)
	}
	// Expected loss still improves, but less than with unlimited budget.
	if tight.ExpectedLossAfter >= tight.ExpectedLossBefore {
		t.Error("no improvement under tight budget")
	}
	if tight.ExpectedLossAfter <= unlimited.ExpectedLossAfter {
		t.Error("tight budget cannot beat unlimited")
	}
}

// TestEndToEndRiskiestArray integrates the stack: take the schedule's
// top-priority array, actually run its online migration on simulated disks
// (scaled down), then survive a double disk failure — the full story of
// the paper in one test.
func TestEndToEndRiskiestArray(t *testing.T) {
	sched, err := Plan(specs(), disksim.DefaultModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	top := sched.Entries[0].Spec
	// The demo arrays may not have prime-friendly sizes; the online
	// migrator requires disks+1 prime, so pick the top array with that
	// property (the planner handles the rest via virtual disks).
	for _, e := range sched.Entries {
		if layout.IsPrime(e.Spec.Disks + 1) {
			top = e.Spec
			break
		}
	}
	if !layout.IsPrime(top.Disks + 1) {
		t.Skip("no prime-friendly array in the demo fleet")
	}

	a, err := raid5.New(top.Disks, 512, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	rows := int64(top.Disks * 4)
	blocks := rows * int64(top.Disks-1)
	r := rand.New(rand.NewSource(1))
	want := make(map[int64][]byte)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, 512)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	mig, err := migrate.NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		t.Fatal(err)
	}
	r6.Disks().Disk(0).Fail()
	r6.Disks().Disk(top.Disks).Fail() // the freshly added parity disk
	buf := make([]byte, 512)
	p := top.Disks + 1
	for L, w := range want {
		row, disk := a.Locate(L)
		cell := layout.Coord{Row: int(row % int64(p-1)), Col: disk}
		if err := r6.ReadCell(row/int64(p-1), cell, buf); err != nil {
			t.Fatalf("block %d: %v", L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong under double failure", L)
		}
	}
}
