//go:build !race

package raid6

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
