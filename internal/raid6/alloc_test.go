package raid6

import (
	"math/rand"
	"testing"

	"code56/internal/core"
)

// The steady-state hot paths must not allocate: stripes come from the
// array's stripe pool, scratch blocks from bufpool, and the chain/covering
// caches replace the per-call layout queries. These tests are the
// regression guard for that property — a new make() or map literal on one
// of these paths shows up as a non-zero AllocsPerRun.
//
// skipIfRace: the race detector's shadow-memory bookkeeping allocates on
// its own, so the 0-allocs assertions only hold in uninstrumented builds.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
}

// newWarmArray builds a healthy Code 5-6 array with `stripes` stripes of
// random data and consistent parity, with every block written at least once
// (so vdisk's backing map is fully populated and writes stop allocating).
func newWarmArray(tb testing.TB, stripes int64) *Array {
	tb.Helper()
	a := New(core.MustNew(5), 4096)
	r := rand.New(rand.NewSource(42))
	buf := make([]byte, a.BlockSize())
	for l := int64(0); l < stripes*int64(a.DataPerStripe()); l++ {
		r.Read(buf)
		if err := a.WriteBlock(l, buf); err != nil {
			tb.Fatalf("WriteBlock(%d): %v", l, err)
		}
	}
	for st := int64(0); st < stripes; st++ {
		if err := a.EncodeStripe(st); err != nil {
			tb.Fatalf("EncodeStripe(%d): %v", st, err)
		}
	}
	return a
}

func TestEncodeStripeAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 2)
	if n := testing.AllocsPerRun(100, func() {
		if err := a.EncodeStripe(1); err != nil {
			t.Fatalf("EncodeStripe: %v", err)
		}
	}); n != 0 {
		t.Errorf("EncodeStripe allocates %.1f times per call, want 0", n)
	}
}

func TestReadBlockHealthyAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 2)
	buf := make([]byte, a.BlockSize())
	if n := testing.AllocsPerRun(100, func() {
		if err := a.ReadBlock(3, buf); err != nil {
			t.Fatalf("ReadBlock: %v", err)
		}
	}); n != 0 {
		t.Errorf("healthy ReadBlock allocates %.1f times per call, want 0", n)
	}
}

func TestDegradedReadAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 2)
	// Fail the disk holding logical block 0 and read it back: the read is
	// served by single-chain reconstruction (the paper's p-3 XOR fast
	// path), which must stay allocation-free — pooled scratch block, cached
	// chains, and the disk's cached fail-stop error.
	_, cell := a.Locate(0)
	a.Disks().Disk(cell.Col).Fail()
	buf := make([]byte, a.BlockSize())
	if n := testing.AllocsPerRun(100, func() {
		if err := a.ReadBlock(0, buf); err != nil {
			t.Fatalf("degraded ReadBlock: %v", err)
		}
	}); n != 0 {
		t.Errorf("single-erasure ReadBlock allocates %.1f times per call, want 0", n)
	}
}

func TestWriteBlockRMWAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 2)
	data := make([]byte, a.BlockSize())
	for i := range data {
		data[i] = byte(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := a.WriteBlock(5, data); err != nil {
			t.Fatalf("WriteBlock: %v", err)
		}
	}); n != 0 {
		t.Errorf("read-modify-write allocates %.1f times per call, want 0", n)
	}
}

// TestLocateAllocationFree pins the logical-to-physical address math at
// zero allocations — Locate runs once per block on every I/O path.
func TestLocateAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 2)
	if n := testing.AllocsPerRun(100, func() {
		stripe, cell := a.Locate(7)
		if stripe < 0 || cell.Row < 0 {
			t.Fatal("Locate returned a negative coordinate")
		}
	}); n != 0 {
		t.Errorf("Locate allocates %.1f times per call, want 0", n)
	}
}
