package raid6

import (
	"fmt"

	"code56/internal/bufpool"
	"code56/internal/layout"
	"code56/internal/xorblk"
)

// WriteRange writes a contiguous run of logical data blocks starting at
// `logical`, batching parity updates per stripe: each touched parity block
// is read and written once regardless of how many of its covered data
// blocks changed — the partial-stripe write optimization (per-block
// read-modify-write pays 2 I/Os on a parity for every block under it).
// data's length must be a multiple of the block size. Stripes whose data
// cells are all overwritten are encoded without reading at all, as in
// WriteStripe. The array must be healthy; degraded ranges fall back to
// per-block writes.
func (a *Array) WriteRange(logical int64, data []byte) error {
	if len(data)%a.blockSize != 0 {
		return fmt.Errorf("raid6: range of %d bytes is not block-aligned (%d)", len(data), a.blockSize)
	}
	nBlocks := int64(len(data) / a.blockSize)
	if nBlocks == 0 {
		return nil
	}
	if len(a.failedColumns()) > 0 {
		for i := int64(0); i < nBlocks; i++ {
			if err := a.WriteBlock(logical+i, data[i*int64(a.blockSize):(i+1)*int64(a.blockSize)]); err != nil {
				return err
			}
		}
		return nil
	}

	perStripe := int64(len(a.dataCells))
	var blocks [][]byte // full-stripe view, allocated once for the whole range
	for done := int64(0); done < nBlocks; {
		stripe := (logical + done) / perStripe
		first := (logical + done) % perStripe
		count := perStripe - first
		if rem := nBlocks - done; rem < count {
			count = rem
		}
		chunk := data[done*int64(a.blockSize) : (done+count)*int64(a.blockSize)]
		if first == 0 && count == perStripe {
			// Full stripe: encode fresh, no reads.
			if blocks == nil {
				blocks = make([][]byte, perStripe)
			}
			for i := int64(0); i < perStripe; i++ {
				blocks[i] = chunk[i*int64(a.blockSize) : (i+1)*int64(a.blockSize)]
			}
			if err := a.WriteStripe(stripe, blocks); err != nil {
				return err
			}
		} else if err := a.writePartialStripe(stripe, first, chunk); err != nil {
			return err
		}
		done += count
	}
	return nil
}

// writePartialStripe applies a run of new blocks within one stripe,
// aggregating the delta per parity cell before touching it.
func (a *Array) writePartialStripe(stripe, first int64, data []byte) error {
	count := int64(len(data) / a.blockSize)
	// Aggregate deltas per parity cell, cascading through chains that
	// cover other parities (RDP, HDP). The per-parity accumulators are
	// rented from bufpool and returned once flushed.
	deltas := make(map[layout.Coord][]byte, len(a.chains))
	defer func() {
		for _, d := range deltas {
			bufpool.Put(d)
		}
	}()
	var propagate func(at layout.Coord, delta []byte)
	propagate = func(at layout.Coord, delta []byte) {
		for _, ci := range a.covering[a.geom.Index(at)] {
			p := a.chains[ci].Parity
			acc, ok := deltas[p]
			if !ok {
				acc = bufpool.GetZero(a.blockSize)
				deltas[p] = acc
			}
			xorblk.Xor(acc, delta)
			propagate(p, delta)
		}
	}

	old := bufpool.Get(a.blockSize)
	defer bufpool.Put(old)
	delta := bufpool.Get(a.blockSize)
	defer bufpool.Put(delta)
	for i := int64(0); i < count; i++ {
		cell := a.dataCells[first+i]
		b := data[i*int64(a.blockSize) : (i+1)*int64(a.blockSize)]
		if err := a.readCell(stripe, cell, old); err != nil {
			return err
		}
		xorblk.XorInto(delta, old, b)
		if err := a.writeCell(stripe, cell, b); err != nil {
			return err
		}
		propagate(cell, delta)
	}
	parity := old // old data already folded into delta; reuse as scratch
	for p, d := range deltas {
		if err := a.readCell(stripe, p, parity); err != nil {
			return err
		}
		xorblk.Xor(parity, d)
		if err := a.writeCell(stripe, p, parity); err != nil {
			return err
		}
	}
	return nil
}
