package raid6

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"code56/internal/parallel"
	"code56/internal/telemetry"
)

// This file holds the array's context-aware bulk entry points. Stripes are
// independent — each occupies a disjoint block-address range on every disk —
// so bulk encode, scrub and rebuild fan per-stripe work out over
// internal/parallel's bounded pool. The pre-existing serial signatures
// (EncodeStripe per stripe, Scrub, Rebuild, RebuildParallel) remain as thin
// wrappers, so nothing that compiled against them changes.
//
// Fan-out is batched (parallel.ForEachBatch): workers claim runs of
// contiguous stripes sized to the BatchBytes cache budget instead of one
// stripe at a time, so each worker streams sequentially through disk
// addresses and the claim counter stops being a contention point for small
// stripes. parallel.WithBatchBytes adjusts the budget.

// stripeBytes is the byte footprint of one stripe across all columns — the
// per-item size batched bulk loops hand to parallel.ForEachBatch.
func (a *Array) stripeBytes() int64 {
	return int64(a.geom.Elements()) * int64(a.blockSize)
}

// EncodeStripesContext recomputes and writes the parities of every stripe
// in [0, stripes) — bulk full-stripe parity generation, e.g. after loading
// raw data onto an array. Work is spread over the pool per
// parallel.WithWorkers; the first failing stripe (or ctx cancellation)
// stops the operation.
func (a *Array) EncodeStripesContext(ctx context.Context, stripes int64, opts ...parallel.Option) error {
	sp := a.tel.tr.StartSpan("raid6.encode_stripes", telemetry.A("stripes", stripes))
	err := parallel.ForEachBatch(ctx, stripes, a.stripeBytes(), func(st int64) error {
		return a.EncodeStripe(st)
	}, opts...)
	if err != nil {
		sp.End(telemetry.A("error", err.Error()))
		return err
	}
	sp.End()
	return nil
}

// EncodeStripesInterleavedContext is EncodeStripesContext with interleaved
// batches: each worker claims a contiguous stripe range
// (parallel.ForEachBatchRange), loads every stripe of the range, encodes
// them chain-by-chain across the whole batch (layout.Encoder's
// EncodeInterleaved), and writes parities column-by-column across the
// batch. Per-stripe encoding touches every chain of a stripe before moving
// on, so each covering disk is read at stride stripeBytes; interleaving
// keeps one chain's cover coordinates fixed while the stripe index
// advances, turning those reads — and the parity writes — into sequential
// streams per column. Results are bit-identical to EncodeStripesContext;
// the first failing stripe (or ctx cancellation) stops the operation.
func (a *Array) EncodeStripesInterleavedContext(ctx context.Context, stripes int64, opts ...parallel.Option) error {
	sp := a.tel.tr.StartSpan("raid6.encode_stripes_interleaved", telemetry.A("stripes", stripes))
	err := parallel.ForEachBatchRange(ctx, stripes, a.stripeBytes(), func(lo, hi int64) error {
		return a.encodeStripeRange(lo, hi)
	}, opts...)
	if err != nil {
		sp.End(telemetry.A("error", err.Error()))
		return err
	}
	sp.End()
	return nil
}

// encodeStripeRange loads stripes [lo, hi), encodes them interleaved, and
// writes their parities interleaved (chain outer, stripe inner — sequential
// addresses on each parity disk). Stripes and the batch slice come from the
// array's pools, so the steady-state path allocates nothing.
func (a *Array) encodeStripeRange(lo, hi int64) error {
	b := a.batches.Get().(*stripeBatch)
	defer func() {
		for _, s := range b.stripes {
			a.stripes.Put(s)
		}
		b.stripes = b.stripes[:0]
		a.batches.Put(b)
	}()
	for st := lo; st < hi; st++ {
		s, es, err := a.loadStripe(st)
		if err != nil {
			return err
		}
		if len(es) > 0 {
			a.stripes.Put(s)
			return fmt.Errorf("%w: cannot encode with failures present", ErrTooManyFailures)
		}
		b.stripes = append(b.stripes, s)
	}
	a.enc.EncodeInterleaved(b.stripes)
	n := hi - lo
	a.tel.stripeEncodes.Add(n)
	a.tel.xors.Add(a.encodeXORs * n)
	for _, ch := range a.chains {
		for i, s := range b.stripes {
			if err := a.writeCell(lo+int64(i), ch.Parity, s.Block(ch.Parity)); err != nil {
				return err
			}
			a.tel.parityUpdates.Inc()
		}
	}
	return nil
}

// RebuildContext reconstructs the contents of the given replaced disks
// across stripes [0, stripes), spreading independent stripes over the pool.
// The disks must have been Replace()d (accepting I/O, contents lost) before
// the call. The first failing stripe (or ctx cancellation) stops the
// rebuild; already-rebuilt stripes keep their restored contents, so a
// stopped rebuild can simply be re-run.
func (a *Array) RebuildContext(ctx context.Context, stripes int64, disks []int, opts ...parallel.Option) error {
	if len(disks) > a.code.FaultTolerance() {
		return fmt.Errorf("%w: %d disks", ErrTooManyFailures, len(disks))
	}
	sp := a.tel.tr.StartSpan("raid6.rebuild",
		telemetry.A("disks", fmt.Sprint(disks)), telemetry.A("stripes", stripes))
	err := parallel.ForEachBatch(ctx, stripes, a.stripeBytes(), func(st int64) error {
		if err := a.rebuildStripe(st, disks); err != nil {
			return err
		}
		a.tel.rebuilt.Add(int64(len(disks) * a.geom.Rows))
		return nil
	}, opts...)
	if err != nil {
		sp.End(telemetry.A("error", err.Error()))
		return err
	}
	sp.End(telemetry.A("blocks", stripes*int64(len(disks)*a.geom.Rows)))
	return nil
}

// ScrubContext verifies every stripe in [0, stripes) like Scrub, spreading
// independent stripes over the pool. The report's counters aggregate across
// stripes and Unrecoverable is sorted, so the result is identical to a
// serial scrub regardless of worker count. A disk-level I/O failure (or ctx
// cancellation) stops the pass and returns the partial report.
func (a *Array) ScrubContext(ctx context.Context, stripes int64, opts ...parallel.Option) (ScrubReport, error) {
	return a.ScrubContextMode(ctx, stripes, ScrubRepair, opts...)
}

// ScrubContextMode is ScrubContext with an explicit repair/check mode.
func (a *Array) ScrubContextMode(ctx context.Context, stripes int64, mode ScrubMode, opts ...parallel.Option) (ScrubReport, error) {
	rep := ScrubReport{Stripes: stripes}
	var mu sync.Mutex
	err := parallel.ForEachBatch(ctx, stripes, a.stripeBytes(), func(st int64) error {
		res, err := a.scrubStripe(st, mode == ScrubRepair)
		if err != nil {
			return err
		}
		mu.Lock()
		rep.add(st, res)
		mu.Unlock()
		return nil
	}, opts...)
	sort.Slice(rep.Unrecoverable, func(i, j int) bool {
		return rep.Unrecoverable[i] < rep.Unrecoverable[j]
	})
	return rep, err
}
