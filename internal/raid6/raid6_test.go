package raid6

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/vdisk"

	hcodepkg "code56/internal/codes/hcode"
)

func codesUnderTest() []layout.Code {
	return []layout.Code{
		core.MustNew(5),
		rdp.MustNew(5),
		evenodd.MustNew(5),
		xcode.MustNew(5),
		hcodepkg.MustNew(5),
		hdp.MustNew(7),
		pcode.MustNew(7, pcode.VariantPMinus1),
	}
}

func fillRandom(t *testing.T, a *Array, stripes int, r *rand.Rand) map[int64][]byte {
	t.Helper()
	want := make(map[int64][]byte)
	n := int64(a.DataPerStripe() * stripes)
	for L := int64(0); L < n; L++ {
		b := make([]byte, a.BlockSize())
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func checkAll(t *testing.T, a *Array, want map[int64][]byte, ctx string) {
	t.Helper()
	buf := make([]byte, a.BlockSize())
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatalf("%s: read %d: %v", ctx, L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("%s: block %d mismatch", ctx, L)
		}
	}
}

func TestRoundTripAndConsistency(t *testing.T) {
	for _, code := range codesUnderTest() {
		a := New(code, 16)
		want := fillRandom(t, a, 3, rand.New(rand.NewSource(1)))
		checkAll(t, a, want, code.Name())
		for st := int64(0); st < 3; st++ {
			ok, err := a.VerifyStripe(st)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: stripe %d inconsistent after writes", code.Name(), st)
			}
		}
	}
}

func TestDegradedReadSingleAndDouble(t *testing.T) {
	for _, code := range codesUnderTest() {
		a := New(code, 16)
		want := fillRandom(t, a, 2, rand.New(rand.NewSource(2)))
		a.Disks().Disk(0).Fail()
		checkAll(t, a, want, code.Name()+" single-degraded")
		a.Disks().Disk(2).Fail()
		checkAll(t, a, want, code.Name()+" double-degraded")
	}
}

func TestTripleFailureFails(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 16)
	fillRandom(t, a, 1, rand.New(rand.NewSource(3)))
	for _, d := range []int{0, 1, 2} {
		a.Disks().Disk(d).Fail()
	}
	buf := make([]byte, 16)
	if err := a.ReadBlock(0, buf); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("triple failure read: %v", err)
	}
}

func TestDegradedWriteThenRebuild(t *testing.T) {
	for _, code := range codesUnderTest() {
		a := New(code, 16)
		want := fillRandom(t, a, 2, rand.New(rand.NewSource(4)))
		a.Disks().Disk(1).Fail()
		a.Disks().Disk(3).Fail()
		r := rand.New(rand.NewSource(5))
		for L := int64(0); L < int64(len(want)); L += 3 {
			b := make([]byte, 16)
			r.Read(b)
			want[L] = b
			if err := a.WriteBlock(L, b); err != nil {
				t.Fatalf("%s: degraded write: %v", code.Name(), err)
			}
		}
		checkAll(t, a, want, code.Name()+" after degraded writes")
		a.Disks().Disk(1).Replace()
		a.Disks().Disk(3).Replace()
		if err := a.Rebuild(2, 1, 3); err != nil {
			t.Fatalf("%s: rebuild: %v", code.Name(), err)
		}
		checkAll(t, a, want, code.Name()+" after rebuild")
		for st := int64(0); st < 2; st++ {
			ok, err := a.VerifyStripe(st)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: stripe %d inconsistent after rebuild", code.Name(), st)
			}
		}
	}
}

func TestRebuildRejectsTooMany(t *testing.T) {
	a := New(core.MustNew(5), 16)
	if err := a.Rebuild(1, 0, 1, 2); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("Rebuild of 3 columns: %v", err)
	}
}

// TestRMWIOProfile asserts the optimal-update-complexity I/O pattern for
// Code 5-6: a healthy-array block update touches exactly the data disk and
// the two parity disks of its chains (paper §III-E-3).
func TestRMWIOProfile(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 16)
	fillRandom(t, a, 1, rand.New(rand.NewSource(6)))
	logical := int64(3)
	_, cell := a.Locate(logical)
	expect := map[int]bool{cell.Col: true}
	for _, ci := range layout.ChainsCovering(code, cell) {
		expect[code.Chains()[ci].Parity.Col] = true
	}
	if len(expect) != 3 {
		t.Fatalf("expected 3 distinct disks, got %v", expect)
	}
	a.Disks().ResetStats()
	if err := a.WriteBlock(logical, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Disks().Len(); i++ {
		s := a.Disks().Disk(i).Stats()
		if expect[i] {
			if s.Reads != 1 || s.Writes != 1 {
				t.Errorf("disk %d: %+v, want 1r/1w", i, s)
			}
		} else if s.Total() != 0 {
			t.Errorf("disk %d touched unexpectedly: %+v", i, s)
		}
	}
}

func TestEncodeStripe(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 16)
	// Write data cells directly (bypassing parity maintenance), then
	// encode the stripe wholesale.
	r := rand.New(rand.NewSource(7))
	for L := int64(0); L < int64(a.DataPerStripe()); L++ {
		st, cell := a.Locate(L)
		b := make([]byte, 16)
		r.Read(b)
		if err := a.Disks().Disk(cell.Col).Write(st*int64(code.Geometry().Rows)+int64(cell.Row), b); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := a.VerifyStripe(0); ok {
		t.Fatal("stripe should be inconsistent before encode")
	}
	if err := a.EncodeStripe(0); err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyStripe(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stripe inconsistent after EncodeStripe")
	}
}

func TestWrapValidatesDiskCount(t *testing.T) {
	if _, err := Wrap(core.MustNew(5), vdisk.NewArray(3, 16)); err == nil {
		t.Fatal("Wrap with wrong disk count accepted")
	}
	if _, err := Wrap(core.MustNew(5), vdisk.NewArray(5, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsBadSize(t *testing.T) {
	a := New(core.MustNew(5), 16)
	if err := a.WriteBlock(0, make([]byte, 4)); err == nil {
		t.Fatal("short write accepted")
	}
}
