package raid6

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
	"code56/internal/telemetry"
	"code56/internal/vdisk"
)

// TestDegradedReadFastPath: with a single failed disk every degraded read
// must be served by the one-chain fast path (horizontal first, the paper's
// p-3 XOR bound) rather than whole-stripe reconstruction.
func TestDegradedReadFastPath(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(core.MustNew(5), 16)
	a.SetTelemetry(reg, nil)
	want := fillRandom(t, a, 2, rand.New(rand.NewSource(31)))
	a.Disks().Disk(1).Fail()
	checkAll(t, a, want, "single failure")

	c := reg.Snapshot().Counters
	if c["raid6.degraded_reads"] == 0 {
		t.Fatal("no degraded reads recorded")
	}
	if c["raid6.degraded_fast_path"] != c["raid6.degraded_reads"] {
		t.Fatalf("fast path served %d of %d degraded reads; single-failure reads must all take one chain",
			c["raid6.degraded_fast_path"], c["raid6.degraded_reads"])
	}
}

// TestDegradedReadDoubleFailureFallsBack: with two failed disks some cells
// have no fully-readable chain, so reads fall back to the full decoder —
// and still succeed.
func TestDegradedReadDoubleFailureFallsBack(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(core.MustNew(5), 16)
	a.SetTelemetry(reg, nil)
	want := fillRandom(t, a, 2, rand.New(rand.NewSource(32)))
	a.Disks().Disk(0).Fail()
	a.Disks().Disk(3).Fail()
	checkAll(t, a, want, "double failure")

	c := reg.Snapshot().Counters
	if c["raid6.degraded_fast_path"] >= c["raid6.degraded_reads"] {
		t.Fatalf("every double-failure read claims the fast path (%d of %d); expected full-decoder fallbacks",
			c["raid6.degraded_fast_path"], c["raid6.degraded_reads"])
	}
}

// TestReadSurvivesTransientErrors: a transient error that outlives the
// disk's retry budget is served by reconstruction instead of surfacing.
func TestReadSurvivesTransientErrors(t *testing.T) {
	a := New(core.MustNew(5), 16)
	want := fillRandom(t, a, 2, rand.New(rand.NewSource(33)))
	err := a.Disks().Disk(2).SetFaults(vdisk.FaultConfig{Seed: 4, ReadTransientProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkAll(t, a, want, "transient faults")
}

// TestScrubCheckModeDetectsWithoutWriting: ScrubCheck counts the damage
// but leaves it in place; ScrubRepair then fixes it; a final check pass is
// clean.
func TestScrubCheckModeDetectsWithoutWriting(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(core.MustNew(5), 16)
	a.SetTelemetry(reg, nil)
	want := fillRandom(t, a, 4, rand.New(rand.NewSource(34)))

	// One latent error in stripe 0, one silent corruption in stripe 2.
	a.Disks().Disk(1).InjectLatentError(0)
	garbage := make([]byte, 16)
	rand.New(rand.NewSource(35)).Read(garbage)
	rows := int64(a.Code().Geometry().Rows)
	if err := a.Disks().Disk(3).Write(2*rows+1, garbage); err != nil {
		t.Fatal(err)
	}

	check, err := a.ScrubWithMode(4, ScrubCheck)
	if err != nil {
		t.Fatal(err)
	}
	if check.LatentFound != 1 || check.CorruptFound != 1 {
		t.Fatalf("check pass found %d latent, %d corrupt; want 1 and 1 (%+v)",
			check.LatentFound, check.CorruptFound, check)
	}
	if check.LatentRepaired != 0 || check.CorruptRepaired != 0 {
		t.Fatalf("check pass wrote to the array: %+v", check)
	}
	if check.Clean() {
		t.Fatal("report with findings claims Clean")
	}
	// The damage is still there.
	buf := make([]byte, 16)
	if err := a.Disks().Disk(1).Read(0, buf); !errors.Is(err, vdisk.ErrLatent) {
		t.Fatalf("latent error healed by a check-mode scrub: %v", err)
	}
	if c := reg.Snapshot().Counters["raid6.scrub_repairs"]; c != 0 {
		t.Fatalf("scrub_repairs = %d after check-only pass", c)
	}

	rep, err := a.ScrubWithMode(4, ScrubRepair)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 1 || rep.CorruptRepaired != 1 {
		t.Fatalf("repair pass fixed %d latent, %d corrupt; want 1 and 1",
			rep.LatentRepaired, rep.CorruptRepaired)
	}
	if c := reg.Snapshot().Counters["raid6.scrub_repairs"]; c != 2 {
		t.Fatalf("scrub_repairs = %d, want 2", c)
	}

	final, err := a.ScrubWithMode(4, ScrubCheck)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Clean() {
		t.Fatalf("array dirty after repair: %+v", final)
	}
	checkAll(t, a, want, "after scrub repair")
}

// TestScrubContextModeMatchesSerial: the parallel check-mode scrub produces
// the same report as the serial one.
func TestScrubContextModeMatchesSerial(t *testing.T) {
	build := func() *Array {
		a := New(core.MustNew(5), 16)
		fillRandom(t, a, 6, rand.New(rand.NewSource(36)))
		a.Disks().Disk(0).InjectLatentError(3)
		a.Disks().Disk(2).InjectLatentError(9)
		return a
	}
	serial, err := build().ScrubWithMode(6, ScrubCheck)
	if err != nil {
		t.Fatal(err)
	}
	par, err := build().ScrubContextMode(context.Background(), 6, ScrubCheck)
	if err != nil {
		t.Fatal(err)
	}
	if serial.LatentFound != par.LatentFound || serial.CorruptFound != par.CorruptFound ||
		len(serial.Unrecoverable) != len(par.Unrecoverable) {
		t.Fatalf("parallel report %+v diverges from serial %+v", par, serial)
	}
	if serial.LatentFound != 2 {
		t.Fatalf("LatentFound = %d, want 2", serial.LatentFound)
	}
}
