package raid6

import (
	"bytes"
	"math/rand"
	"testing"

	"code56/internal/core"
)

func newRotated(t *testing.T) *Array {
	t.Helper()
	a := New(core.MustNew(5), 16)
	a.SetRotation(true)
	if !a.Rotated() {
		t.Fatal("rotation not enabled")
	}
	return a
}

func TestRotationMappingInverts(t *testing.T) {
	a := newRotated(t)
	for st := int64(0); st < 12; st++ {
		seen := map[int]bool{}
		for col := 0; col < 5; col++ {
			d := a.diskFor(st, col).ID()
			if seen[d] {
				t.Fatalf("stripe %d: disk %d mapped twice", st, d)
			}
			seen[d] = true
			if back := a.colOnDisk(st, d); back != col {
				t.Fatalf("stripe %d col %d -> disk %d -> col %d", st, col, d, back)
			}
		}
	}
	// Stripe 0 is the identity; stripe 1 shifts by one.
	if a.diskFor(0, 2).ID() != 2 || a.diskFor(1, 2).ID() != 3 {
		t.Fatal("rotation offset wrong")
	}
}

func TestRotatedRoundTripDegradedRebuild(t *testing.T) {
	a := newRotated(t)
	want := fillRandom(t, a, 4, rand.New(rand.NewSource(1)))
	checkAll(t, a, want, "rotated healthy")
	for st := int64(0); st < 4; st++ {
		ok, err := a.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d: %v %v", st, ok, err)
		}
	}
	a.Disks().Disk(0).Fail()
	a.Disks().Disk(3).Fail()
	checkAll(t, a, want, "rotated double-degraded")
	a.Disks().Disk(0).Replace()
	a.Disks().Disk(3).Replace()
	if err := a.Rebuild(4, 0, 3); err != nil {
		t.Fatal(err)
	}
	checkAll(t, a, want, "rotated after rebuild")
	for st := int64(0); st < 4; st++ {
		ok, err := a.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d after rebuild: %v %v", st, ok, err)
		}
	}
}

// TestRotationBalancesParityWrites: Code 5-6 concentrates diagonal parity
// on the last column; with rotation, repeated single-block updates touch
// the dedicated-parity role on every disk.
func TestRotationBalancesParityWrites(t *testing.T) {
	plain := New(core.MustNew(5), 16)
	rot := newRotated(t)
	for _, a := range []*Array{plain, rot} {
		fillRandom(t, a, 5, rand.New(rand.NewSource(2)))
		a.Disks().ResetStats()
		// One update per stripe.
		for st := int64(0); st < 5; st++ {
			L := st * int64(a.DataPerStripe())
			if err := a.WriteBlock(L, bytes.Repeat([]byte{byte(st)}, 16)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Without rotation disk 4 (diagonal column) takes a write per update.
	if w := plain.Disks().Disk(4).Stats().Writes; w != 5 {
		t.Errorf("plain: dedicated disk got %d writes, want 5", w)
	}
	// With rotation the diagonal role moves: no disk should absorb all 5.
	maxW := int64(0)
	for i := 0; i < 5; i++ {
		if w := rot.Disks().Disk(i).Stats().Writes; w > maxW {
			maxW = w
		}
	}
	if maxW >= 5 {
		t.Errorf("rotated: one disk still absorbed %d diagonal-parity writes", maxW)
	}
}

func TestScrubHealsLatentErrors(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		a := New(core.MustNew(5), 16)
		a.SetRotation(rotate)
		want := fillRandom(t, a, 3, rand.New(rand.NewSource(3)))
		// Inject latent errors on two blocks of different stripes.
		a.Disks().Disk(1).InjectLatentError(0)
		a.Disks().Disk(2).InjectLatentError(5)
		rep, err := a.Scrub(3)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatentRepaired != 2 {
			t.Errorf("rotate=%v: repaired %d latent blocks, want 2", rotate, rep.LatentRepaired)
		}
		if len(rep.Unrecoverable) != 0 {
			t.Errorf("rotate=%v: unrecoverable stripes %v", rotate, rep.Unrecoverable)
		}
		checkAll(t, a, want, "after latent scrub")
		// The repaired blocks must now read cleanly without redundancy.
		buf := make([]byte, 16)
		if err := a.Disks().Disk(1).Read(0, buf); err != nil {
			t.Errorf("rotate=%v: latent block not rewritten: %v", rotate, err)
		}
	}
}

func TestScrubLocatesSilentCorruption(t *testing.T) {
	a := New(core.MustNew(5), 16)
	want := fillRandom(t, a, 2, rand.New(rand.NewSource(4)))
	// Silently corrupt one data block, bypassing parity maintenance.
	evil := bytes.Repeat([]byte{0xEE}, 16)
	if err := a.Disks().Disk(2).Write(1, evil); err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.VerifyStripe(0); ok {
		t.Fatal("corruption not visible to verify")
	}
	rep, err := a.Scrub(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptRepaired != 1 {
		t.Fatalf("repaired %d corrupt blocks, want 1 (report %+v)", rep.CorruptRepaired, rep)
	}
	if ok, _ := a.VerifyStripe(0); !ok {
		t.Fatal("stripe still inconsistent after scrub")
	}
	checkAll(t, a, want, "after corruption scrub")
}

func TestScrubReportsMultiCorruption(t *testing.T) {
	a := New(core.MustNew(5), 16)
	fillRandom(t, a, 1, rand.New(rand.NewSource(5)))
	// Corrupt two blocks in the same stripe: localization must refuse to
	// guess.
	evil := bytes.Repeat([]byte{0xEE}, 16)
	if err := a.Disks().Disk(0).Write(0, evil); err != nil {
		t.Fatal(err)
	}
	if err := a.Disks().Disk(1).Write(2, evil); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Scrub(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecoverable) != 1 {
		t.Fatalf("unrecoverable = %v, want exactly stripe 0 (report %+v)", rep.Unrecoverable, rep)
	}
}

func TestScrubCleanArrayIsNoop(t *testing.T) {
	a := New(core.MustNew(5), 16)
	fillRandom(t, a, 2, rand.New(rand.NewSource(6)))
	rep, err := a.Scrub(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 0 || rep.CorruptRepaired != 0 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("clean array scrub reported work: %+v", rep)
	}
}

// TestLocateCorruptionParityCell: a corrupted parity block must be located
// too.
func TestLocateCorruptionParityCell(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 16)
	fillRandom(t, a, 1, rand.New(rand.NewSource(7)))
	// Corrupt a diagonal parity cell: column 4, row 2.
	evil := bytes.Repeat([]byte{0xAA}, 16)
	if err := a.Disks().Disk(4).Write(2, evil); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Scrub(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptRepaired != 1 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("parity corruption not repaired: %+v", rep)
	}
	if ok, _ := a.VerifyStripe(0); !ok {
		t.Fatal("stripe inconsistent after parity repair")
	}
}

// TestStatefulInvariants drives a random operation sequence — writes, disk
// failures, replacements, rebuilds, scrubs, latent errors — and checks the
// array's two invariants throughout: readable blocks always return the
// last written value, and healthy stripes always verify.
func TestStatefulInvariants(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		code := core.MustNew(5)
		a := New(code, 16)
		a.SetRotation(rotate)
		const stripes = 4
		blocks := int64(a.DataPerStripe() * stripes)
		r := rand.New(rand.NewSource(42))
		want := make(map[int64][]byte)
		for L := int64(0); L < blocks; L++ {
			b := make([]byte, 16)
			r.Read(b)
			want[L] = b
			if err := a.WriteBlock(L, b); err != nil {
				t.Fatal(err)
			}
		}
		failed := map[int]bool{}
		buf := make([]byte, 16)
		for step := 0; step < 400; step++ {
			switch op := r.Intn(10); {
			case op < 4: // write
				L := r.Int63n(blocks)
				b := make([]byte, 16)
				r.Read(b)
				if err := a.WriteBlock(L, b); err != nil {
					t.Fatalf("rotate=%v step %d write: %v", rotate, step, err)
				}
				want[L] = b
			case op < 7: // read-check a random block
				L := r.Int63n(blocks)
				if err := a.ReadBlock(L, buf); err != nil {
					t.Fatalf("rotate=%v step %d read: %v", rotate, step, err)
				}
				if !bytes.Equal(buf, want[L]) {
					t.Fatalf("rotate=%v step %d: block %d stale", rotate, step, L)
				}
			case op < 8: // fail a disk if tolerance allows
				if len(failed) < 2 {
					d := r.Intn(5)
					if !failed[d] {
						a.Disks().Disk(d).Fail()
						failed[d] = true
					}
				}
			case op < 9: // replace + rebuild all failed disks
				if len(failed) > 0 {
					var ds []int
					for d := range failed {
						a.Disks().Disk(d).Replace()
						ds = append(ds, d)
					}
					if err := a.Rebuild(stripes, ds...); err != nil {
						t.Fatalf("rotate=%v step %d rebuild: %v", rotate, step, err)
					}
					failed = map[int]bool{}
				}
			default: // latent error + scrub (only when healthy)
				if len(failed) == 0 {
					a.Disks().Disk(r.Intn(5)).InjectLatentError(r.Int63n(stripes * 4))
					if _, err := a.Scrub(stripes); err != nil {
						t.Fatalf("rotate=%v step %d scrub: %v", rotate, step, err)
					}
				}
			}
		}
		// Final: heal everything and verify every stripe and block.
		if len(failed) > 0 {
			var ds []int
			for d := range failed {
				a.Disks().Disk(d).Replace()
				ds = append(ds, d)
			}
			if err := a.Rebuild(stripes, ds...); err != nil {
				t.Fatal(err)
			}
		}
		for st := int64(0); st < stripes; st++ {
			ok, err := a.VerifyStripe(st)
			if err != nil || !ok {
				t.Fatalf("rotate=%v: stripe %d inconsistent at end: %v", rotate, st, err)
			}
		}
		for L, w := range want {
			if err := a.ReadBlock(L, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, w) {
				t.Fatalf("rotate=%v: block %d corrupted", rotate, L)
			}
		}
	}
}
