package raid6

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

func TestWriteStripeRoundTrip(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 32)
	r := rand.New(rand.NewSource(1))
	data := randBlocks(r, a.DataPerStripe(), 32)
	if err := a.WriteStripe(0, data); err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyStripe(0)
	if err != nil || !ok {
		t.Fatalf("stripe inconsistent after full-stripe write: %v %v", ok, err)
	}
	got, err := a.ReadStripe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	// Per-block reads agree too.
	buf := make([]byte, 32)
	for L := int64(0); L < int64(a.DataPerStripe()); L++ {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[L]) {
			t.Fatalf("ReadBlock %d mismatch", L)
		}
	}
}

// TestWriteStripeIOProfile: a full-stripe write issues zero reads and
// exactly one write per cell — the I/O advantage over per-block RMW.
func TestWriteStripeIOProfile(t *testing.T) {
	code := core.MustNew(5)

	full := New(code, 32)
	r := rand.New(rand.NewSource(2))
	data := randBlocks(r, full.DataPerStripe(), 32)
	if err := full.WriteStripe(0, data); err != nil {
		t.Fatal(err)
	}
	fullStats := full.Disks().TotalStats()
	if fullStats.Reads != 0 {
		t.Errorf("full-stripe write issued %d reads, want 0", fullStats.Reads)
	}
	cells := int64(code.Geometry().Elements())
	if fullStats.Writes != cells {
		t.Errorf("full-stripe write issued %d writes, want %d", fullStats.Writes, cells)
	}

	rmw := New(code, 32)
	for L := int64(0); L < int64(rmw.DataPerStripe()); L++ {
		if err := rmw.WriteBlock(L, data[L]); err != nil {
			t.Fatal(err)
		}
	}
	rmwStats := rmw.Disks().TotalStats()
	if rmwStats.Total() <= fullStats.Total() {
		t.Errorf("RMW path %d I/Os not above full-stripe %d", rmwStats.Total(), fullStats.Total())
	}
	// The two paths must produce identical arrays.
	buf1 := make([]byte, 32)
	buf2 := make([]byte, 32)
	for L := int64(0); L < int64(rmw.DataPerStripe()); L++ {
		if err := full.ReadBlock(L, buf1); err != nil {
			t.Fatal(err)
		}
		if err := rmw.ReadBlock(L, buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1, buf2) {
			t.Fatalf("block %d differs between write paths", L)
		}
	}
}

func TestWriteStripeValidation(t *testing.T) {
	a := New(core.MustNew(5), 32)
	if err := a.WriteStripe(0, make([][]byte, 3)); err == nil {
		t.Error("wrong block count accepted")
	}
	bad := randBlocks(rand.New(rand.NewSource(3)), a.DataPerStripe(), 32)
	bad[2] = bad[2][:5]
	if err := a.WriteStripe(0, bad); err == nil {
		t.Error("short block accepted")
	}
	a.Disks().Disk(1).Fail()
	good := randBlocks(rand.New(rand.NewSource(4)), a.DataPerStripe(), 32)
	if err := a.WriteStripe(0, good); !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("degraded full-stripe write: %v", err)
	}
}

func TestReadStripeDegraded(t *testing.T) {
	a := New(core.MustNew(5), 32)
	a.SetRotation(true)
	r := rand.New(rand.NewSource(5))
	data := randBlocks(r, a.DataPerStripe(), 32)
	if err := a.WriteStripe(2, data); err != nil {
		t.Fatal(err)
	}
	a.Disks().Disk(0).Fail()
	a.Disks().Disk(4).Fail()
	got, err := a.ReadStripe(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("block %d mismatch under double failure", i)
		}
	}
}

// TestSecondFailureDuringRebuild: disk 1 fails and is being rebuilt when
// disk 3 fails; the rebuild of both must still succeed afterwards — the
// exact reliability scenario the paper's migration targets.
func TestSecondFailureDuringRebuild(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 32)
	r := rand.New(rand.NewSource(6))
	const stripes = 6
	want := make(map[int64][]byte)
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		b := make([]byte, 32)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(1).Fail()
	a.Disks().Disk(1).Replace()
	// Rebuild the first half of the stripes...
	if err := a.Rebuild(stripes/2, 1); err != nil {
		t.Fatal(err)
	}
	// ...then a second disk dies mid-rebuild.
	a.Disks().Disk(3).Fail()
	// Finishing disk 1's rebuild now needs double reconstruction on the
	// unrebuilt half: erase both the remaining stale region and disk 3.
	a.Disks().Disk(3).Replace()
	if err := a.Rebuild(stripes, 1, 3); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong after cascaded failures", L)
		}
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := a.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d inconsistent: %v %v", st, ok, err)
		}
	}
}

// TestRebuildParallelMatchesSerial: parallel and serial rebuilds produce
// identical, consistent arrays (run with -race).
func TestRebuildParallelMatchesSerial(t *testing.T) {
	code := core.MustNew(7)
	mk := func() (*Array, map[int64][]byte) {
		a := New(code, 32)
		a.SetRotation(true)
		r := rand.New(rand.NewSource(9))
		const stripes = 12
		want := make(map[int64][]byte)
		for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
			b := make([]byte, 32)
			r.Read(b)
			want[L] = b
			if err := a.WriteBlock(L, b); err != nil {
				t.Fatal(err)
			}
		}
		return a, want
	}
	serial, wantS := mk()
	parallel, wantP := mk()
	for _, a := range []*Array{serial, parallel} {
		a.Disks().Disk(1).Fail()
		a.Disks().Disk(5).Fail()
		a.Disks().Disk(1).Replace()
		a.Disks().Disk(5).Replace()
	}
	if err := serial.Rebuild(12, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := parallel.RebuildParallel(12, 4, 1, 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for L, w := range wantP {
		if err := parallel.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong after parallel rebuild", L)
		}
		if !bytes.Equal(w, wantS[L]) {
			t.Fatal("test setup mismatch")
		}
	}
	for st := int64(0); st < 12; st++ {
		ok, err := parallel.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d inconsistent after parallel rebuild: %v %v", st, ok, err)
		}
	}
	// Degenerate paths.
	if err := parallel.RebuildParallel(12, 0, 1); err != nil { // auto workers
		t.Fatal(err)
	}
	if err := parallel.RebuildParallel(2, 8, 1); err != nil { // workers > stripes
		t.Fatal(err)
	}
	if err := parallel.RebuildParallel(12, 4, 0, 1, 2); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("triple rebuild: %v", err)
	}
}
