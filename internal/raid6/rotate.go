package raid6

import (
	"errors"

	"code56/internal/layout"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// SetRotation enables or disables per-stripe column rotation: with rotation
// on, logical column c of stripe s lives on disk (c + s) mod n. This is the
// paper's "with load balancing support" implementation (§V-B): codes with
// dedicated parity columns (RDP, EVENODD, Code 5-6) would otherwise
// concentrate parity traffic on fixed disks. Call before any I/O; changing
// the mapping on a populated array scrambles it.
func (a *Array) SetRotation(on bool) { a.rotate = on }

// Rotated reports whether per-stripe column rotation is enabled.
func (a *Array) Rotated() bool { return a.rotate }

// diskFor maps a stripe's logical column to its physical disk.
func (a *Array) diskFor(stripe int64, col int) *vdisk.Disk {
	if a.rotate {
		col = (col + int(stripe%int64(a.geom.Cols))) % a.geom.Cols
	}
	return a.disks.Disk(col)
}

// colOnDisk inverts diskFor: the logical column that disk d serves in the
// given stripe.
func (a *Array) colOnDisk(stripe int64, d int) int {
	if a.rotate {
		return ((d-int(stripe%int64(a.geom.Cols)))%a.geom.Cols + a.geom.Cols) % a.geom.Cols
	}
	return d
}

// ScrubReport summarizes a scrub pass (the defense against the latent
// sector errors and undetected disk errors motivating the paper's §I).
type ScrubReport struct {
	// Stripes is the number of stripes checked.
	Stripes int64
	// LatentRepaired counts blocks that returned latent sector errors and
	// were rebuilt and rewritten.
	LatentRepaired int
	// CorruptRepaired counts silently corrupted blocks located by parity
	// syndrome intersection and rewritten.
	CorruptRepaired int
	// Unrecoverable lists stripes whose inconsistency could not be
	// attributed to a single block.
	Unrecoverable []int64
}

// Scrub verifies every stripe in [0, stripes): latent sector errors are
// rebuilt from redundancy and rewritten; silent single-block corruptions
// are located by intersecting the failing parity chains and repaired. A
// stripe whose corruption cannot be pinned to one block is reported
// unrecoverable (RAID-6 syndromes cannot always distinguish multi-block
// corruption). ScrubContext is the concurrent, cancelable form.
func (a *Array) Scrub(stripes int64) (ScrubReport, error) {
	rep := ScrubReport{Stripes: stripes}
	for st := int64(0); st < stripes; st++ {
		latent, corrupt, unrecoverable, err := a.scrubStripe(st)
		rep.LatentRepaired += latent
		rep.CorruptRepaired += corrupt
		if unrecoverable {
			rep.Unrecoverable = append(rep.Unrecoverable, st)
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scrubStripe runs one stripe's scrub pass: latent-error healing, then a
// parity-syndrome check locating and repairing silent single-block
// corruption. It touches only stripe st's block range, so distinct stripes
// may be scrubbed concurrently.
func (a *Array) scrubStripe(st int64) (latentRepaired, corruptRepaired int, unrecoverable bool, _ error) {
	// Load with latent-error healing.
	s := layout.NewStripe(a.geom, a.blockSize)
	var latent []layout.Coord
	for r := 0; r < a.geom.Rows; r++ {
		for j := 0; j < a.geom.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			err := a.diskFor(st, c.Col).Read(a.blockAddr(st, c), s.Block(c))
			switch {
			case err == nil:
			case errors.Is(err, vdisk.ErrLatent):
				s.Zero(c)
				latent = append(latent, c)
			default:
				return latentRepaired, corruptRepaired, false, err
			}
		}
	}
	if len(latent) > 0 {
		es := make(layout.ErasureSet, len(latent))
		for _, c := range latent {
			es[c] = true
		}
		if _, err := layout.Reconstruct(a.code, s, es); err != nil {
			return latentRepaired, corruptRepaired, true, nil
		}
		for _, c := range latent {
			if err := a.diskFor(st, c.Col).Write(a.blockAddr(st, c), s.Block(c)); err != nil {
				return latentRepaired, corruptRepaired, false, err
			}
			latentRepaired++
		}
	}

	// Syndrome check for silent corruption.
	if layout.Verify(a.code, s) {
		return latentRepaired, corruptRepaired, false, nil
	}
	cell, ok := locateCorruption(a.code, s)
	if !ok {
		return latentRepaired, corruptRepaired, true, nil
	}
	es := layout.ErasureSet{cell: true}
	s.Zero(cell)
	if _, err := layout.Reconstruct(a.code, s, es); err != nil {
		return latentRepaired, corruptRepaired, true, nil
	}
	if err := a.diskFor(st, cell.Col).Write(a.blockAddr(st, cell), s.Block(cell)); err != nil {
		return latentRepaired, corruptRepaired, false, err
	}
	corruptRepaired++
	if !layout.Verify(a.code, s) {
		// Repairing the located block did not restore consistency:
		// more than one block was corrupt after all.
		return latentRepaired, corruptRepaired, true, nil
	}
	return latentRepaired, corruptRepaired, false, nil
}

// locateCorruption finds the unique cell whose membership pattern matches
// the set of failing chains, if exactly one exists.
func locateCorruption(code layout.Code, s *layout.Stripe) (layout.Coord, bool) {
	failing := make(map[int]bool)
	acc := make([]byte, s.BlockSize)
	for i, ch := range code.Chains() {
		copy(acc, s.Block(ch.Parity))
		for _, m := range ch.Covers {
			xorblk.Xor(acc, s.Block(m))
		}
		if !xorblk.IsZero(acc) {
			failing[i] = true
		}
	}
	if len(failing) == 0 {
		return layout.Coord{}, false
	}
	g := code.Geometry()
	var found layout.Coord
	matches := 0
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			// The chains that would fail if c were corrupt: every chain
			// containing c (as parity or cover).
			ok := true
			count := 0
			for i, ch := range code.Chains() {
				contains := ch.Parity == c
				if !contains {
					for _, m := range ch.Covers {
						if m == c {
							contains = true
							break
						}
					}
				}
				if contains {
					count++
					if !failing[i] {
						ok = false
						break
					}
				}
			}
			if ok && count == len(failing) {
				found = c
				matches++
			}
		}
	}
	if matches != 1 {
		return layout.Coord{}, false
	}
	return found, true
}
