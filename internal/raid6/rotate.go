package raid6

import (
	"errors"

	"code56/internal/bufpool"
	"code56/internal/layout"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// SetRotation enables or disables per-stripe column rotation: with rotation
// on, logical column c of stripe s lives on disk (c + s) mod n. This is the
// paper's "with load balancing support" implementation (§V-B): codes with
// dedicated parity columns (RDP, EVENODD, Code 5-6) would otherwise
// concentrate parity traffic on fixed disks. Call before any I/O; changing
// the mapping on a populated array scrambles it.
func (a *Array) SetRotation(on bool) { a.rotate = on }

// Rotated reports whether per-stripe column rotation is enabled.
func (a *Array) Rotated() bool { return a.rotate }

// diskFor maps a stripe's logical column to its physical disk.
//
//c56:noalloc
func (a *Array) diskFor(stripe int64, col int) *vdisk.Disk {
	if a.rotate {
		col = (col + int(stripe%int64(a.geom.Cols))) % a.geom.Cols
	}
	return a.disks.Disk(col)
}

// colOnDisk inverts diskFor: the logical column that disk d serves in the
// given stripe.
func (a *Array) colOnDisk(stripe int64, d int) int {
	if a.rotate {
		return ((d-int(stripe%int64(a.geom.Cols)))%a.geom.Cols + a.geom.Cols) % a.geom.Cols
	}
	return d
}

// ScrubMode selects what a scrub pass does with the problems it finds.
type ScrubMode int

const (
	// ScrubRepair (the zero value, and the historical behavior) rebuilds
	// and rewrites bad blocks: latent sector errors are reconstructed from
	// redundancy, located silent corruptions are overwritten.
	ScrubRepair ScrubMode = iota
	// ScrubCheck only detects and counts problems, leaving disks untouched.
	ScrubCheck
)

// ScrubReport summarizes a scrub pass (the defense against the latent
// sector errors and undetected disk errors motivating the paper's §I).
type ScrubReport struct {
	// Stripes is the number of stripes checked.
	Stripes int64
	// LatentFound counts blocks that returned latent sector errors.
	LatentFound int
	// LatentRepaired counts latent blocks rebuilt and rewritten (always 0
	// in ScrubCheck mode).
	LatentRepaired int
	// CorruptFound counts silently corrupted blocks located by parity
	// syndrome intersection.
	CorruptFound int
	// CorruptRepaired counts located corruptions rewritten (always 0 in
	// ScrubCheck mode).
	CorruptRepaired int
	// Unrecoverable lists stripes whose inconsistency could not be
	// attributed to a single block.
	Unrecoverable []int64
}

// Clean reports whether the pass found nothing wrong.
func (r ScrubReport) Clean() bool {
	return r.LatentFound == 0 && r.CorruptFound == 0 && len(r.Unrecoverable) == 0
}

// Scrub verifies every stripe in [0, stripes): latent sector errors are
// rebuilt from redundancy and rewritten; silent single-block corruptions
// are located by intersecting the failing parity chains and repaired. A
// stripe whose corruption cannot be pinned to one block is reported
// unrecoverable (RAID-6 syndromes cannot always distinguish multi-block
// corruption). ScrubContext is the concurrent, cancelable form, and
// ScrubWithMode the detect-only variant.
func (a *Array) Scrub(stripes int64) (ScrubReport, error) {
	return a.ScrubWithMode(stripes, ScrubRepair)
}

// ScrubWithMode is Scrub with an explicit repair/check mode.
func (a *Array) ScrubWithMode(stripes int64, mode ScrubMode) (ScrubReport, error) {
	rep := ScrubReport{Stripes: stripes}
	for st := int64(0); st < stripes; st++ {
		res, err := a.scrubStripe(st, mode == ScrubRepair)
		rep.add(st, res)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scrubResult is one stripe's scrub outcome.
type scrubResult struct {
	latentFound, latentRepaired   int
	corruptFound, corruptRepaired int
	unrecoverable                 bool
}

// add folds one stripe's result into the report.
func (r *ScrubReport) add(st int64, res scrubResult) {
	r.LatentFound += res.latentFound
	r.LatentRepaired += res.latentRepaired
	r.CorruptFound += res.corruptFound
	r.CorruptRepaired += res.corruptRepaired
	if res.unrecoverable {
		r.Unrecoverable = append(r.Unrecoverable, st)
	}
}

// scrubStripe runs one stripe's scrub pass: latent-error healing, then a
// parity-syndrome check locating and repairing silent single-block
// corruption. With repair false it only detects. It touches only stripe
// st's block range, so distinct stripes may be scrubbed concurrently.
func (a *Array) scrubStripe(st int64, repair bool) (res scrubResult, _ error) {
	// Load with latent-error healing.
	s := a.stripes.Get()
	defer a.stripes.Put(s)
	var latent []layout.Coord
	for r := 0; r < a.geom.Rows; r++ {
		for j := 0; j < a.geom.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			err := a.diskFor(st, c.Col).Read(a.blockAddr(st, c), s.Block(c))
			switch {
			case err == nil:
			case errors.Is(err, vdisk.ErrLatent):
				s.Zero(c)
				latent = append(latent, c)
			default:
				return res, err
			}
		}
	}
	res.latentFound = len(latent)
	if len(latent) > 0 {
		es := make(layout.ErasureSet, len(latent))
		for _, c := range latent {
			es[c] = true
		}
		if _, err := layout.Reconstruct(a.code, s, es); err != nil {
			res.unrecoverable = true
			return res, nil
		}
		if repair {
			for _, c := range latent {
				if err := a.diskFor(st, c.Col).Write(a.blockAddr(st, c), s.Block(c)); err != nil {
					return res, err
				}
				res.latentRepaired++
				a.tel.scrubRepairs.Inc()
			}
		}
	}

	// Syndrome check for silent corruption.
	if a.enc.Verify(s) {
		return res, nil
	}
	cell, ok := locateCorruption(a.code, s)
	if !ok {
		res.unrecoverable = true
		return res, nil
	}
	es := layout.ErasureSet{cell: true}
	s.Zero(cell)
	if _, err := layout.Reconstruct(a.code, s, es); err != nil {
		res.unrecoverable = true
		return res, nil
	}
	if !a.enc.Verify(s) {
		// Reconstructing the located block did not restore consistency:
		// more than one block was corrupt after all — the located cell was
		// not a genuine single corruption, so it does not count as found.
		res.unrecoverable = true
		return res, nil
	}
	res.corruptFound++
	if repair {
		if err := a.diskFor(st, cell.Col).Write(a.blockAddr(st, cell), s.Block(cell)); err != nil {
			return res, err
		}
		res.corruptRepaired++
		a.tel.scrubRepairs.Inc()
	}
	return res, nil
}

// locateCorruption finds the unique cell whose membership pattern matches
// the set of failing chains, if exactly one exists.
func locateCorruption(code layout.Code, s *layout.Stripe) (layout.Coord, bool) {
	chains := code.Chains()
	failing := make(map[int]bool)
	acc := bufpool.Get(s.BlockSize)
	defer bufpool.Put(acc)
	for i, ch := range chains {
		copy(acc, s.Block(ch.Parity))
		for _, m := range ch.Covers {
			xorblk.Xor(acc, s.Block(m))
		}
		if !xorblk.IsZero(acc) {
			failing[i] = true
		}
	}
	if len(failing) == 0 {
		return layout.Coord{}, false
	}
	g := code.Geometry()
	var found layout.Coord
	matches := 0
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			// The chains that would fail if c were corrupt: every chain
			// containing c (as parity or cover).
			ok := true
			count := 0
			for i, ch := range chains {
				contains := ch.Parity == c
				if !contains {
					for _, m := range ch.Covers {
						if m == c {
							contains = true
							break
						}
					}
				}
				if contains {
					count++
					if !failing[i] {
						ok = false
						break
					}
				}
			}
			if ok && count == len(failing) {
				found = c
				matches++
			}
		}
	}
	if matches != 1 {
		return layout.Coord{}, false
	}
	return found, true
}
