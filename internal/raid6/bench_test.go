package raid6

import (
	"fmt"
	"math/rand"
	"testing"

	"code56/internal/core"
)

func benchArray(b *testing.B, stripes int) *Array {
	b.Helper()
	a := New(core.MustNew(7), 4096)
	r := rand.New(rand.NewSource(1))
	buf := make([]byte, 4096)
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		r.Read(buf)
		if err := a.WriteBlock(L, buf); err != nil {
			b.Fatal(err)
		}
	}
	return a
}

func BenchmarkWriteBlockRMW(b *testing.B) {
	a := benchArray(b, 4)
	blocks := int64(a.DataPerStripe() * 4)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteBlock(int64(i)%blocks, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteRangePartialStripe(b *testing.B) {
	a := benchArray(b, 4)
	n := a.DataPerStripe() / 2
	data := make([]byte, n*4096)
	rand.New(rand.NewSource(3)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteRange(0, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFullStripe(b *testing.B) {
	a := benchArray(b, 4)
	blocks := make([][]byte, a.DataPerStripe())
	r := rand.New(rand.NewSource(4))
	for i := range blocks {
		blocks[i] = make([]byte, 4096)
		r.Read(blocks[i])
	}
	b.SetBytes(int64(len(blocks) * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.WriteStripe(1, blocks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBlockHealthy(b *testing.B) {
	a := benchArray(b, 4)
	blocks := int64(a.DataPerStripe() * 4)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlock(int64(i)%blocks, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBlockDegraded(b *testing.B) {
	a := benchArray(b, 4)
	a.Disks().Disk(0).Fail()
	blocks := int64(a.DataPerStripe() * 4)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReadBlock(int64(i)%blocks, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRebuildDoubleFailure(b *testing.B) {
	const stripes = 4
	a := benchArray(b, stripes)
	bytes := int64(2 * stripes * a.Code().Geometry().Rows * 4096)
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a.Disks().Disk(1).Fail()
		a.Disks().Disk(4).Fail()
		a.Disks().Disk(1).Replace()
		a.Disks().Disk(4).Replace()
		b.StartTimer()
		if err := a.Rebuild(stripes, 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebuildParallel compares worker-pool rebuild against the serial
// path at several widths.
func BenchmarkRebuildParallel(b *testing.B) {
	const stripes = 32
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a := benchArray(b, stripes)
			bts := int64(2 * stripes * a.Code().Geometry().Rows * 4096)
			b.SetBytes(bts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a.Disks().Disk(1).Fail()
				a.Disks().Disk(4).Fail()
				a.Disks().Disk(1).Replace()
				a.Disks().Disk(4).Replace()
				b.StartTimer()
				if err := a.RebuildParallel(stripes, workers, 1, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
