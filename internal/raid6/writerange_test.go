package raid6

import (
	"bytes"
	"math/rand"
	"testing"

	"code56/internal/codes/hdp"
	"code56/internal/codes/rdp"
	"code56/internal/core"
	"code56/internal/layout"
)

// TestWriteRangeCorrectness writes ranges of every alignment and length
// across several codes (including the cascading-parity ones) and checks
// contents and stripe consistency against a per-block reference array.
func TestWriteRangeCorrectness(t *testing.T) {
	for _, code := range []layout.Code{core.MustNew(5), rdp.MustNew(5), hdp.MustNew(7)} {
		a := New(code, 16)
		ref := New(code, 16)
		r := rand.New(rand.NewSource(1))
		const stripes = 3
		blocks := int64(a.DataPerStripe() * stripes)
		seed := make([]byte, 16)
		for L := int64(0); L < blocks; L++ {
			r.Read(seed)
			if err := a.WriteBlock(L, seed); err != nil {
				t.Fatal(err)
			}
			if err := ref.WriteBlock(L, seed); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 40; trial++ {
			start := r.Int63n(blocks)
			maxLen := blocks - start
			n := 1 + r.Int63n(min64(maxLen, int64(a.DataPerStripe())+3))
			data := make([]byte, n*16)
			r.Read(data)
			if err := a.WriteRange(start, data); err != nil {
				t.Fatalf("%s trial %d: %v", code.Name(), trial, err)
			}
			for i := int64(0); i < n; i++ {
				if err := ref.WriteBlock(start+i, data[i*16:(i+1)*16]); err != nil {
					t.Fatal(err)
				}
			}
		}
		buf1 := make([]byte, 16)
		buf2 := make([]byte, 16)
		for L := int64(0); L < blocks; L++ {
			if err := a.ReadBlock(L, buf1); err != nil {
				t.Fatal(err)
			}
			if err := ref.ReadBlock(L, buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf1, buf2) {
				t.Fatalf("%s: block %d differs from per-block reference", code.Name(), L)
			}
		}
		for st := int64(0); st < stripes; st++ {
			ok, err := a.VerifyStripe(st)
			if err != nil || !ok {
				t.Fatalf("%s: stripe %d inconsistent: %v %v", code.Name(), st, ok, err)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestWriteRangeIOAdvantage: a partial-stripe range write touches each
// parity once, beating the per-block path's repeated parity RMW.
func TestWriteRangeIOAdvantage(t *testing.T) {
	code := core.MustNew(7)
	batch := New(code, 16)
	perBlock := New(code, 16)
	r := rand.New(rand.NewSource(2))
	blocks := int64(batch.DataPerStripe())
	buf := make([]byte, 16)
	for L := int64(0); L < blocks; L++ {
		r.Read(buf)
		_ = batch.WriteBlock(L, buf)
		_ = perBlock.WriteBlock(L, buf)
	}
	// Write 2/3 of a stripe.
	n := blocks * 2 / 3
	data := make([]byte, n*16)
	r.Read(data)
	batch.Disks().ResetStats()
	perBlock.Disks().ResetStats()
	if err := batch.WriteRange(0, data); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := perBlock.WriteBlock(i, data[i*16:(i+1)*16]); err != nil {
			t.Fatal(err)
		}
	}
	b := batch.Disks().TotalStats()
	p := perBlock.Disks().TotalStats()
	if b.Total() >= p.Total() {
		t.Errorf("range write %d I/Os, per-block %d — no batching advantage", b.Total(), p.Total())
	}
	// Full-stripe ranges must issue zero reads.
	full := make([]byte, blocks*16)
	r.Read(full)
	batch.Disks().ResetStats()
	if err := batch.WriteRange(0, full); err != nil {
		t.Fatal(err)
	}
	if reads := batch.Disks().TotalStats().Reads; reads != 0 {
		t.Errorf("full-stripe range issued %d reads, want 0", reads)
	}
}

func TestWriteRangeDegradedFallback(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 16)
	r := rand.New(rand.NewSource(3))
	blocks := int64(a.DataPerStripe() * 2)
	buf := make([]byte, 16)
	for L := int64(0); L < blocks; L++ {
		r.Read(buf)
		_ = a.WriteBlock(L, buf)
	}
	a.Disks().Disk(2).Fail()
	data := make([]byte, 5*16)
	r.Read(data)
	if err := a.WriteRange(3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	for i := int64(0); i < 5; i++ {
		if err := a.ReadBlock(3+i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[i*16:(i+1)*16]) {
			t.Fatalf("degraded range block %d wrong", i)
		}
	}
}

func TestWriteRangeValidation(t *testing.T) {
	a := New(core.MustNew(5), 16)
	if err := a.WriteRange(0, make([]byte, 10)); err == nil {
		t.Error("unaligned range accepted")
	}
	if err := a.WriteRange(0, nil); err != nil {
		t.Errorf("empty range should be a no-op: %v", err)
	}
}
