package raid6

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
	"code56/internal/parallel"
)

// fillStripes writes random data blocks to stripes [0, stripes) and returns
// the written blocks keyed by logical index.
func fillStripes(t *testing.T, a *Array, stripes int64, seed int64) map[int64][]byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	want := make(map[int64][]byte)
	blocks := stripes * int64(a.DataPerStripe())
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, a.BlockSize())
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// TestParallelEncode4096Stripes is the engine's -race workout: a
// 4096-stripe array has all parities regenerated with 8 workers, then every
// stripe is verified and compared against a serially encoded twin. Run
// under `go test -race` (CI does) this exercises the pool, the vdisk locks
// and the telemetry counters concurrently.
func TestParallelEncode4096Stripes(t *testing.T) {
	code, err := core.New(5)
	if err != nil {
		t.Fatal(err)
	}
	const stripes, block = 4096, 64
	par := New(code, block)
	ser := New(code, block)

	// Load identical raw data onto both arrays' data cells without parity
	// maintenance, so EncodeStripes does all the parity work.
	r := rand.New(rand.NewSource(20))
	g := code.Geometry()
	for st := int64(0); st < stripes; st++ {
		for _, c := range par.dataCells {
			b := make([]byte, block)
			r.Read(b)
			addr := st*int64(g.Rows) + int64(c.Row)
			if err := par.Disks().Disk(c.Col).Write(addr, b); err != nil {
				t.Fatal(err)
			}
			if err := ser.Disks().Disk(c.Col).Write(addr, b); err != nil {
				t.Fatal(err)
			}
		}
	}

	if err := par.EncodeStripesContext(context.Background(), stripes, parallel.WithWorkers(8)); err != nil {
		t.Fatal(err)
	}
	if err := ser.EncodeStripesContext(context.Background(), stripes, parallel.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}

	for st := int64(0); st < stripes; st += 97 { // sample across the array
		ok, err := par.VerifyStripe(st)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stripe %d inconsistent after parallel encode", st)
		}
	}
	// Every disk byte must match the serial encode exactly.
	for d := 0; d < par.Disks().Len(); d++ {
		bp := make([]byte, block)
		bs := make([]byte, block)
		for addr := int64(0); addr < stripes*int64(g.Rows); addr += 311 {
			if err := par.Disks().Disk(d).Read(addr, bp); err != nil {
				t.Fatal(err)
			}
			if err := ser.Disks().Disk(d).Read(addr, bs); err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bs[i] {
					t.Fatalf("disk %d addr %d differs between parallel and serial encode", d, addr)
				}
			}
		}
	}
}

func TestEncodeStripesContextCancelled(t *testing.T) {
	code, err := core.New(5)
	if err != nil {
		t.Fatal(err)
	}
	a := New(code, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.EncodeStripesContext(ctx, 64, parallel.WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRebuildContextMatchesSerial(t *testing.T) {
	code, err := core.New(7)
	if err != nil {
		t.Fatal(err)
	}
	const stripes = 64
	a := New(code, 128)
	want := fillStripes(t, a, stripes, 21)

	a.Disks().Disk(2).Fail()
	a.Disks().Disk(5).Fail()
	a.Disks().Disk(2).Replace()
	a.Disks().Disk(5).Replace()
	if err := a.RebuildContext(context.Background(), stripes, []int{2, 5}, parallel.WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, a.BlockSize())
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != w[i] {
				t.Fatalf("block %d wrong after parallel rebuild", L)
			}
		}
	}

	// Too many disks still rejected.
	if err := a.RebuildContext(context.Background(), stripes, []int{0, 1, 2}); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestScrubContextMatchesSerialReport(t *testing.T) {
	code, err := core.New(5)
	if err != nil {
		t.Fatal(err)
	}
	const stripes = 48
	a := New(code, 64)
	fillStripes(t, a, stripes, 22)

	// Inject latent errors on a few stripes and silent corruption on others.
	g := code.Geometry()
	for _, st := range []int64{3, 17, 31} {
		a.Disks().Disk(1).InjectLatentError(st * int64(g.Rows))
	}
	for _, st := range []int64{7, 29} {
		buf := make([]byte, 64)
		if err := a.Disks().Disk(2).Read(st*int64(g.Rows)+1, buf); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xFF
		if err := a.Disks().Disk(2).Write(st*int64(g.Rows)+1, buf); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := a.ScrubContext(context.Background(), stripes, parallel.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 3 {
		t.Errorf("LatentRepaired = %d, want 3", rep.LatentRepaired)
	}
	if rep.CorruptRepaired != 2 {
		t.Errorf("CorruptRepaired = %d, want 2", rep.CorruptRepaired)
	}
	if len(rep.Unrecoverable) != 0 {
		t.Errorf("Unrecoverable = %v, want none", rep.Unrecoverable)
	}
	// A second pass finds a clean array.
	rep, err = a.ScrubContext(context.Background(), stripes, parallel.WithWorkers(4))
	if err != nil || rep.LatentRepaired != 0 || rep.CorruptRepaired != 0 {
		t.Errorf("second scrub = %+v, %v; want clean", rep, err)
	}
}
