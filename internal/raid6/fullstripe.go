package raid6

import (
	"context"
	"fmt"

	"code56/internal/layout"
	"code56/internal/parallel"
)

// RebuildParallel is Rebuild with the per-stripe reconstructions fanned out
// over a worker pool (stripes are independent: disjoint reads per stripe
// row range, disjoint writes). workers <= 0 selects GOMAXPROCS. The disks
// must have been Replace()d first. It is the pre-context form of
// RebuildContext, kept for compatibility.
func (a *Array) RebuildParallel(stripes int64, workers int, disks ...int) error {
	return a.RebuildContext(context.Background(), stripes, disks, parallel.WithWorkers(workers))
}

// rebuildStripe reconstructs the given disks' cells of one stripe.
func (a *Array) rebuildStripe(st int64, disks []int) error {
	s, es, err := a.loadStripe(st)
	if err != nil {
		return err
	}
	defer a.stripes.Put(s)
	if es == nil {
		es = make(layout.ErasureSet, len(disks)*a.geom.Rows)
	}
	for _, d := range disks {
		col := a.colOnDisk(st, d)
		for r := 0; r < a.geom.Rows; r++ {
			c := layout.Coord{Row: r, Col: col}
			s.Zero(c)
			es[c] = true
		}
	}
	if _, err := layout.Reconstruct(a.code, s, es); err != nil {
		return fmt.Errorf("%w: stripe %d: %v", ErrTooManyFailures, st, err)
	}
	for _, d := range disks {
		col := a.colOnDisk(st, d)
		for r := 0; r < a.geom.Rows; r++ {
			c := layout.Coord{Row: r, Col: col}
			if err := a.writeCell(st, c, s.Block(c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteStripe writes all data blocks of one stripe at once and encodes its
// parities in a single pass — the full-stripe write optimization: no block
// is read, every cell is written exactly once (2 writes per data block at
// MDS rates, versus up to 6 I/Os per block through read-modify-write).
// data must contain exactly DataPerStripe() blocks, in Locate order. The
// array must be healthy.
func (a *Array) WriteStripe(stripe int64, data [][]byte) error {
	if len(data) != len(a.dataCells) {
		return fmt.Errorf("raid6: full-stripe write of %d blocks, want %d", len(data), len(a.dataCells))
	}
	if len(a.failedColumns()) > 0 {
		return fmt.Errorf("%w: full-stripe write needs a healthy array", ErrTooManyFailures)
	}
	s := a.stripes.Get()
	defer a.stripes.Put(s)
	for i, b := range data {
		if len(b) != a.blockSize {
			return fmt.Errorf("raid6: block %d has %d bytes, want %d", i, len(b), a.blockSize)
		}
		s.SetBlock(a.dataCells[i], b)
	}
	a.enc.Encode(s)
	for r := 0; r < a.geom.Rows; r++ {
		for j := 0; j < a.geom.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			if err := a.writeCell(stripe, c, s.Block(c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadStripe reads all data blocks of one stripe in Locate order,
// reconstructing if disks have failed.
func (a *Array) ReadStripe(stripe int64) ([][]byte, error) {
	s, es, err := a.loadStripe(stripe)
	if err != nil {
		return nil, err
	}
	defer a.stripes.Put(s)
	if len(es) > 0 {
		if _, err := layout.Reconstruct(a.code, s, es); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTooManyFailures, err)
		}
	}
	out := make([][]byte, len(a.dataCells))
	for i, c := range a.dataCells {
		b := make([]byte, a.blockSize)
		copy(b, s.Block(c))
		out[i] = b
	}
	return out, nil
}
