// Package raid6 implements a RAID-6 array driver over any layout.Code: it
// maps logical data blocks onto stripes of the code's geometry, maintains
// parities on writes, serves degraded reads under one or two disk failures,
// and rebuilds replaced disks. The migration engine produces arrays driven
// by this package (with Code 5-6 as the code) from RAID-5 arrays.
package raid6

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"code56/internal/bufpool"
	"code56/internal/layout"
	"code56/internal/parallel"
	"code56/internal/telemetry"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// ErrTooManyFailures is returned when an operation needs more surviving
// columns than are available.
var ErrTooManyFailures = errors.New("raid6: failures exceed fault tolerance")

// Array is a RAID-6 array using an erasure code over vdisk-backed disks.
// Disk i of the array stores column i of every stripe; stripe s occupies
// disk blocks [s*Rows, (s+1)*Rows).
type Array struct {
	code      layout.Code
	disks     *vdisk.Array
	blockSize int
	geom      layout.Geometry
	dataCells []layout.Coord
	rotate    bool
	tel       tel
	// encodeXORs is the XOR count of one full-stripe encode: for each
	// chain, members fold into the parity with len(Covers)-1 XORs.
	encodeXORs int64

	// The fields below are derived caches that keep the per-stripe hot
	// paths allocation-free: the code's chains and per-cell covering-chain
	// indices are resolved once (Code.Chains may rebuild its slice per
	// call and layout.ChainsCovering allocates), the encoder carries the
	// pre-resolved chain order plus pooled scratch, and stripes for
	// load/encode/scrub cycles are recycled instead of allocated.
	chains   []layout.Chain
	covering [][]int // chain indices covering cell i (geom.Index order)
	enc      *layout.Encoder
	stripes  *layout.StripePool
	// batches pools the stripe-pointer slices the interleaved bulk encoder
	// claims per ForEachBatchRange range, keeping that path allocation-free.
	batches sync.Pool
}

// tel holds the array's bound telemetry instruments (see README
// "Telemetry" for the metric reference).
type tel struct {
	tr            *telemetry.Tracer
	blockReads    *telemetry.Counter // ReadBlock/ReadCell calls served
	blockWrites   *telemetry.Counter // WriteBlock calls served
	degradedReads *telemetry.Counter // reads answered by reconstruction
	degradedFast  *telemetry.Counter // degraded reads served by one chain
	parityUpdates *telemetry.Counter // parity cells written
	xors          *telemetry.Counter // block XOR operations
	stripeEncodes *telemetry.Counter // full-stripe parity generations
	rebuilt       *telemetry.Counter // blocks rebuilt onto replaced disks
	scrubRepairs  *telemetry.Counter // blocks rewritten by scrub repair
}

func bindTel(reg *telemetry.Registry, tr *telemetry.Tracer) tel {
	return tel{
		tr:            tr,
		blockReads:    reg.Counter("raid6.block_reads"),
		blockWrites:   reg.Counter("raid6.block_writes"),
		degradedReads: reg.Counter("raid6.degraded_reads"),
		degradedFast:  reg.Counter("raid6.degraded_fast_path"),
		parityUpdates: reg.Counter("raid6.parity_updates"),
		xors:          reg.Counter("raid6.xors"),
		stripeEncodes: reg.Counter("raid6.stripe_encodes"),
		rebuilt:       reg.Counter("raid6.blocks_rebuilt"),
		scrubRepairs:  reg.Counter("raid6.scrub_repairs"),
	}
}

func encodeXORCount(code layout.Code) int64 {
	var n int64
	for _, ch := range code.Chains() {
		if len(ch.Covers) > 1 {
			n += int64(len(ch.Covers) - 1)
		}
	}
	return n
}

// New creates a RAID-6 array for the code over fresh disks.
func New(code layout.Code, blockSize int) *Array {
	g := code.Geometry()
	return newArray(code, vdisk.NewArray(g.Cols, blockSize), blockSize)
}

// newArray builds an Array and its derived hot-path caches.
func newArray(code layout.Code, disks *vdisk.Array, blockSize int) *Array {
	g := code.Geometry()
	covering := make([][]int, g.Elements())
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			covering[g.Index(c)] = layout.ChainsCovering(code, c)
		}
	}
	a := &Array{
		code:       code,
		disks:      disks,
		blockSize:  blockSize,
		geom:       g,
		dataCells:  layout.DataElements(code),
		tel:        bindTel(nil, nil),
		encodeXORs: encodeXORCount(code),
		chains:     code.Chains(),
		covering:   covering,
		enc:        layout.NewEncoder(code),
		stripes:    layout.NewStripePool(g, blockSize),
	}
	a.batches.New = func() any { return &stripeBatch{} }
	return a
}

// stripeBatch is one worker's claimed run of loaded stripes, pooled by the
// array so the interleaved bulk encoder allocates nothing per range.
type stripeBatch struct{ stripes []*layout.Stripe }

// SetTelemetry rebinds the array's counters and tracer (and those of the
// underlying disks). Pass nil for either argument to use the process-wide
// defaults.
func (a *Array) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	a.tel = bindTel(reg, tr)
	a.disks.SetTelemetry(reg, tr)
}

// Wrap builds an Array over an existing disk array (used by the migration
// engine after a conversion completes). The disk array must have exactly
// Geometry().Cols disks.
func Wrap(code layout.Code, disks *vdisk.Array) (*Array, error) {
	g := code.Geometry()
	if disks.Len() != g.Cols {
		return nil, fmt.Errorf("raid6: %d disks for a %d-column code", disks.Len(), g.Cols)
	}
	return newArray(code, disks, disks.BlockSize()), nil
}

// Code returns the erasure code in use.
func (a *Array) Code() layout.Code { return a.code }

// Disks exposes the underlying disk array.
func (a *Array) Disks() *vdisk.Array { return a.disks }

// BlockSize returns the block size in bytes.
func (a *Array) BlockSize() int { return a.blockSize }

// DataPerStripe returns the number of logical data blocks per stripe.
func (a *Array) DataPerStripe() int { return len(a.dataCells) }

// Locate maps a logical data block to its stripe index and cell coordinate.
//
//c56:noalloc
func (a *Array) Locate(logical int64) (stripe int64, cell layout.Coord) {
	n := int64(len(a.dataCells))
	return logical / n, a.dataCells[logical%n]
}

// blockAddr returns the disk block address of cell c in stripe s.
//
//c56:noalloc
func (a *Array) blockAddr(stripe int64, c layout.Coord) int64 {
	return stripe*int64(a.geom.Rows) + int64(c.Row)
}

// readCell reads one cell into buf directly from its disk (honoring the
// per-stripe rotation when enabled).
//
//c56:noalloc
func (a *Array) readCell(stripe int64, c layout.Coord, buf []byte) error {
	return a.diskFor(stripe, c.Col).Read(a.blockAddr(stripe, c), buf)
}

// writeCell writes one cell.
//
//c56:noalloc
func (a *Array) writeCell(stripe int64, c layout.Coord, data []byte) error {
	return a.diskFor(stripe, c.Col).Write(a.blockAddr(stripe, c), data)
}

// failedColumns returns the failed disk indices.
//
//c56:noalloc
func (a *Array) failedColumns() []int {
	var f []int
	for i := 0; i < a.geom.Cols; i++ {
		if a.disks.Disk(i).Failed() {
			f = append(f, i) //lint:allow noalloc enumerating failures allocates only when disks are down
		}
	}
	return f
}

// loadStripe reads every cell of stripe s from non-failed disks and returns
// the stripe plus the erasure set of unreadable cells. The stripe comes from
// the array's pool — callers hand it back with a.stripes.Put when done. The
// erasure set is nil while the stripe is fully readable, so the healthy path
// allocates nothing.
//
//c56:noalloc
func (a *Array) loadStripe(stripe int64) (*layout.Stripe, layout.ErasureSet, error) {
	s := a.stripes.Get()
	var es layout.ErasureSet
	for r := 0; r < a.geom.Rows; r++ {
		for j := 0; j < a.geom.Cols; j++ {
			c := layout.Coord{Row: r, Col: j}
			err := a.readCell(stripe, c, s.Block(c))
			switch {
			case err == nil:
			case isDegradable(err):
				s.Zero(c)
				if es == nil {
					es = make(layout.ErasureSet) //lint:allow noalloc erasure bookkeeping exists only once cells are unreadable
				}
				es[c] = true //lint:allow noalloc erasure bookkeeping exists only once cells are unreadable
			default:
				a.stripes.Put(s)
				return nil, nil, err
			}
		}
	}
	return s, es, nil
}

// isDegradable reports whether a read error can be served by
// reconstruction: fail-stopped disks, latent sector errors, and transient
// faults that survived the disk's retry policy.
//
//c56:noalloc
func isDegradable(err error) bool {
	return errors.Is(err, vdisk.ErrFailed) || errors.Is(err, vdisk.ErrLatent) ||
		errors.Is(err, vdisk.ErrTransient)
}

// ReadBlock reads logical data block L, reconstructing if the holding disk
// (or a needed block) is unavailable. A single unreadable cell is rebuilt
// through one parity chain — horizontal first (see degradedRead); wider
// damage falls back to whole-stripe reconstruction.
//
//c56:noalloc
func (a *Array) ReadBlock(logical int64, buf []byte) error {
	a.tel.blockReads.Inc()
	stripe, cell := a.Locate(logical)
	err := a.readCell(stripe, cell, buf)
	if err == nil {
		return nil
	}
	if !isDegradable(err) {
		return err
	}
	return a.degradedRead(stripe, cell, buf)
}

// ReadCell reads an arbitrary stripe cell (data or parity), reconstructing
// if the cell's disk is unavailable. Migration tooling uses it to serve
// RAID-5-addressed blocks through the RAID-6 redundancy.
func (a *Array) ReadCell(stripe int64, cell layout.Coord, buf []byte) error {
	a.tel.blockReads.Inc()
	err := a.readCell(stripe, cell, buf)
	if err == nil {
		return nil
	}
	if !isDegradable(err) {
		return err
	}
	return a.degradedRead(stripe, cell, buf)
}

// degradedRead serves a read whose direct cell access failed. It first
// tries to rebuild the single cell through one parity chain, preferring
// horizontal chains — a horizontal rebuild costs p-3 XORs and p-2 reads in
// Code 5-6, the paper's single-block decode bound, and never touches the
// diagonal-parity disk. If no single chain has all its other members
// readable (multiple failures intersecting every chain), it falls back to
// loading the whole stripe and running the full decoder.
//
//c56:noalloc
func (a *Array) degradedRead(stripe int64, cell layout.Coord, buf []byte) error {
	a.tel.degradedReads.Inc()
	if a.reconstructCell(stripe, cell, buf) {
		a.tel.degradedFast.Inc()
		return nil
	}
	s, es, err := a.loadStripe(stripe)
	if err != nil {
		return err
	}
	defer a.stripes.Put(s)
	if _, err := layout.Reconstruct(a.code, s, es); err != nil { //lint:allow noalloc multi-erasure fallback decodes the whole stripe; the single-chain fast path is the steady state
		return fmt.Errorf("%w: %v", ErrTooManyFailures, err)
	}
	copy(buf, s.Block(cell))
	return nil
}

// reconstructCell tries to rebuild one cell from a single parity chain,
// horizontal chains first. It reports whether any chain succeeded; on
// success buf holds the cell's contents.
//
//c56:noalloc
func (a *Array) reconstructCell(stripe int64, cell layout.Coord, buf []byte) bool {
	for _, horizontal := range [2]bool{true, false} {
		for _, ch := range a.chains {
			if (ch.Kind == layout.ParityH) != horizontal || !chainContains(ch, cell) {
				continue
			}
			if a.xorChainInto(stripe, ch, cell, buf) {
				return true
			}
		}
	}
	return false
}

// chainContains reports whether cell is a member (parity or cover) of ch.
//
//c56:noalloc
func chainContains(ch layout.Chain, cell layout.Coord) bool {
	if ch.Parity == cell {
		return true
	}
	for _, m := range ch.Covers {
		if m == cell {
			return true
		}
	}
	return false
}

// xorChainInto XORs every member of ch except cell into buf. It reports
// false (leaving buf dirty) if any member read fails. The parity and covers
// are walked directly (ch.Members would allocate the combined slice) and the
// read scratch is rented from bufpool, keeping the single-chain degraded
// read allocation-free.
//
//c56:noalloc
func (a *Array) xorChainInto(stripe int64, ch layout.Chain, cell layout.Coord, buf []byte) bool {
	for i := range buf {
		buf[i] = 0
	}
	tmp := bufpool.Get(a.blockSize)
	defer bufpool.Put(tmp)
	xorMember := func(m layout.Coord) bool {
		if m == cell {
			return true
		}
		if err := a.readCell(stripe, m, tmp); err != nil {
			return false
		}
		xorblk.Xor(buf, tmp)
		a.tel.xors.Inc()
		return true
	}
	if !xorMember(ch.Parity) {
		return false
	}
	for _, m := range ch.Covers {
		if !xorMember(m) {
			return false
		}
	}
	return true
}

// WriteBlock writes logical data block L. In a healthy array it performs
// read-modify-write: read the old data, XOR the delta into every covering
// parity. With failures present it falls back to stripe
// reconstruct-modify-write.
//
//c56:noalloc
func (a *Array) WriteBlock(logical int64, data []byte) error {
	if len(data) != a.blockSize {
		return fmt.Errorf("raid6: write of %d bytes, want %d", len(data), a.blockSize)
	}
	a.tel.blockWrites.Inc()
	stripe, cell := a.Locate(logical)
	if len(a.failedColumns()) == 0 {
		return a.writeRMW(stripe, cell, data)
	}
	return a.writeDegraded(stripe, cell, data) //lint:allow noalloc degraded writes reconstruct the whole stripe; RMW is the steady state
}

//c56:noalloc
func (a *Array) writeRMW(stripe int64, cell layout.Coord, data []byte) error {
	old := bufpool.Get(a.blockSize)
	defer bufpool.Put(old)
	if err := a.readCell(stripe, cell, old); err != nil {
		return err
	}
	delta := bufpool.Get(a.blockSize)
	defer bufpool.Put(delta)
	xorblk.XorInto(delta, old, data)
	a.tel.xors.Inc()
	if err := a.writeCell(stripe, cell, data); err != nil {
		return err
	}
	// Propagate the delta through every chain covering the changed cell.
	// Parity cells can themselves be covered by other chains (RDP's
	// diagonals cover the row-parity column; HDP's horizontal chains cover
	// the anti-diagonal parities), so updates cascade; the chain graph is
	// acyclic, so this terminates. Every affected parity absorbs the same
	// block delta, so the cascade queue holds only coordinates — a small
	// fixed array keeps the healthy write path allocation-free.
	var queueArr [16]layout.Coord
	queue := queueArr[:0]
	queue = append(queue, cell) //lint:allow noalloc the cascade queue lives in the fixed 16-slot array
	parity := old               // the old data is folded into delta already; reuse as scratch
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, ci := range a.covering[a.geom.Index(at)] {
			p := a.chains[ci].Parity
			if err := a.readCell(stripe, p, parity); err != nil {
				return err
			}
			xorblk.Xor(parity, delta)
			a.tel.xors.Inc()
			if err := a.writeCell(stripe, p, parity); err != nil {
				return err
			}
			a.tel.parityUpdates.Inc()
			queue = append(queue, p) //lint:allow noalloc the cascade queue lives in the fixed 16-slot array
		}
	}
	return nil
}

func (a *Array) writeDegraded(stripe int64, cell layout.Coord, data []byte) error {
	s, es, err := a.loadStripe(stripe)
	if err != nil {
		return err
	}
	defer a.stripes.Put(s)
	if _, err := layout.Reconstruct(a.code, s, es); err != nil {
		return fmt.Errorf("%w: %v", ErrTooManyFailures, err)
	}
	s.SetBlock(cell, data)
	a.enc.Encode(s)
	a.tel.xors.Add(a.encodeXORs)
	// Write back the changed data cell and every parity on surviving
	// disks; failed columns are skipped (their content is restored at
	// rebuild time).
	write := func(c layout.Coord) error {
		if a.diskFor(stripe, c.Col).Failed() {
			return nil
		}
		return a.writeCell(stripe, c, s.Block(c))
	}
	if err := write(cell); err != nil {
		return err
	}
	for _, ch := range a.chains {
		if err := write(ch.Parity); err != nil {
			return err
		}
		a.tel.parityUpdates.Inc()
	}
	return nil
}

// EncodeStripe recomputes and writes all parities of stripe s from its data
// cells (full-stripe parity generation).
//
//c56:noalloc
func (a *Array) EncodeStripe(stripe int64) error {
	s, es, err := a.loadStripe(stripe)
	if err != nil {
		return err
	}
	defer a.stripes.Put(s)
	if len(es) > 0 {
		return fmt.Errorf("%w: cannot encode with failures present", ErrTooManyFailures)
	}
	a.enc.Encode(s)
	a.tel.stripeEncodes.Inc()
	a.tel.xors.Add(a.encodeXORs)
	for _, ch := range a.chains {
		if err := a.writeCell(stripe, ch.Parity, s.Block(ch.Parity)); err != nil {
			return err
		}
		a.tel.parityUpdates.Inc()
	}
	return nil
}

// VerifyStripe reports whether every parity chain of stripe s holds.
func (a *Array) VerifyStripe(stripe int64) (bool, error) {
	s, es, err := a.loadStripe(stripe)
	if err != nil {
		return false, err
	}
	defer a.stripes.Put(s)
	if len(es) > 0 {
		return false, fmt.Errorf("%w: cannot verify with failures present", ErrTooManyFailures)
	}
	return a.enc.Verify(s), nil
}

// Rebuild reconstructs the contents of the given replaced disks across
// stripes [0, stripes). The disks must have been Replace()d (accepting I/O,
// contents lost) before the call. Disk indices are physical; with rotation
// enabled each disk serves a different logical column per stripe.
// RebuildContext is the concurrent, cancelable form.
func (a *Array) Rebuild(stripes int64, disks ...int) error {
	return a.RebuildContext(context.Background(), stripes, disks, parallel.WithWorkers(1))
}
