package raid6

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
	"code56/internal/parallel"
	"code56/internal/telemetry"
)

// loadRawData writes identical random data cells (no parity maintenance)
// to every array in as, so a subsequent bulk encode does all parity work.
func loadRawData(t *testing.T, seed int64, stripes int64, as ...*Array) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := as[0].geom
	b := make([]byte, as[0].blockSize)
	for st := int64(0); st < stripes; st++ {
		for _, c := range as[0].dataCells {
			r.Read(b)
			addr := st*int64(g.Rows) + int64(c.Row)
			for _, a := range as {
				if err := a.Disks().Disk(c.Col).Write(addr, b); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestEncodeStripesInterleavedMatchesPerStripe loads identical raw data
// onto two arrays, encodes one with the per-stripe bulk path and the other
// with the interleaved path (small batch budget so ranges really hold
// several stripes, multiple workers so claims interleave), and requires
// every disk byte to match — the bit-identical contract at the array
// level.
func TestEncodeStripesInterleavedMatchesPerStripe(t *testing.T) {
	code := core.MustNew(5)
	const stripes, block = 257, 64 // prime count: ragged final batch
	per := New(code, block)
	inter := New(code, block)
	loadRawData(t, 31, stripes, per, inter)

	ctx := context.Background()
	if err := per.EncodeStripesContext(ctx, stripes, parallel.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	err := inter.EncodeStripesInterleavedContext(ctx, stripes,
		parallel.WithWorkers(4), parallel.WithBatchBytes(8*int(inter.stripeBytes())))
	if err != nil {
		t.Fatal(err)
	}

	g := code.Geometry()
	bp, bi := make([]byte, block), make([]byte, block)
	for d := 0; d < per.Disks().Len(); d++ {
		for addr := int64(0); addr < stripes*int64(g.Rows); addr++ {
			if err := per.Disks().Disk(d).Read(addr, bp); err != nil {
				t.Fatal(err)
			}
			if err := inter.Disks().Disk(d).Read(addr, bi); err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bi[i] {
					t.Fatalf("disk %d addr %d differs between per-stripe and interleaved encode", d, addr)
				}
			}
		}
	}
	ok, err := inter.VerifyStripe(stripes - 1)
	if err != nil || !ok {
		t.Fatalf("last stripe inconsistent after interleaved encode (ok=%v err=%v)", ok, err)
	}
}

// TestEncodeStripesInterleavedTelemetry checks the batched counter updates
// equal the per-stripe path's accounting.
func TestEncodeStripesInterleavedTelemetry(t *testing.T) {
	code := core.MustNew(5)
	const stripes = 16
	a := New(code, 64)
	a.SetTelemetry(telemetry.NewRegistry(), nil) // isolate from the global registry
	loadRawData(t, 5, stripes, a)
	if err := a.EncodeStripesInterleavedContext(context.Background(), stripes,
		parallel.WithWorkers(1), parallel.WithBatchBytes(4*int(a.stripeBytes()))); err != nil {
		t.Fatal(err)
	}
	if got := a.tel.stripeEncodes.Value(); got != stripes {
		t.Errorf("stripe_encodes = %d, want %d", got, stripes)
	}
	if got, want := a.tel.xors.Value(), a.encodeXORs*stripes; got != want {
		t.Errorf("xors = %d, want %d", got, want)
	}
	chains := int64(len(a.chains))
	if got, want := a.tel.parityUpdates.Value(), chains*stripes; got != want {
		t.Errorf("parity_updates = %d, want %d", got, want)
	}
}

// TestEncodeStripesInterleavedFailures mirrors EncodeStripe's refusal to
// encode with failures present, and checks cancellation propagates.
func TestEncodeStripesInterleavedFailures(t *testing.T) {
	code := core.MustNew(5)
	a := New(code, 64)
	loadRawData(t, 9, 8, a)
	a.Disks().Disk(1).Fail()
	err := a.EncodeStripesInterleavedContext(context.Background(), 8, parallel.WithWorkers(2))
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}

	b := New(code, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.EncodeStripesInterleavedContext(ctx, 64, parallel.WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEncodeStripeRangeAllocationFree pins the interleaved batch path —
// pooled batch slice, pooled stripes, interleaved encode, parity
// write-back — at zero steady-state allocations.
func TestEncodeStripeRangeAllocationFree(t *testing.T) {
	skipIfRace(t)
	a := newWarmArray(t, 4)
	if n := testing.AllocsPerRun(100, func() {
		if err := a.encodeStripeRange(0, 4); err != nil {
			t.Fatalf("encodeStripeRange: %v", err)
		}
	}); n != 0 {
		t.Errorf("encodeStripeRange allocates %.1f times per call, want 0", n)
	}
}
