package code56

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPublicQuickstart walks the README quick-start through the public API:
// encode, double failure, recovery.
func TestPublicQuickstart(t *testing.T) {
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	array := NewRAID6(code, 512)
	r := rand.New(rand.NewSource(1))
	want := map[int64][]byte{}
	for L := int64(0); L < int64(array.DataPerStripe()*2); L++ {
		b := make([]byte, 512)
		r.Read(b)
		want[L] = b
		if err := array.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	array.Disks().Disk(1).Fail()
	array.Disks().Disk(3).Fail()
	buf := make([]byte, 512)
	for L, w := range want {
		if err := array.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong under double failure", L)
		}
	}
}

// TestPublicMigration drives the online migration through the public API
// and downgrades back.
func TestPublicMigration(t *testing.T) {
	r5, err := NewRAID5(4, 512, LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(bytes.Repeat([]byte("x"), 512))
	for L := int64(0); L < 24; L++ {
		if err := r5.WriteBlock(L, data); err != nil {
			t.Fatal(err)
		}
	}
	mig, err := NewOnlineMigrator(r5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r6.VerifyStripe(0)
	if err != nil || !ok {
		t.Fatalf("stripe 0 verify: %v %v", ok, err)
	}
	if err := Downgrade(r6); err != nil {
		t.Fatal(err)
	}
	if r5.Disks().Len() != 4 {
		t.Fatalf("disks after downgrade: %d", r5.Disks().Len())
	}
}

// TestPublicPlansAndCodes smoke-tests the planner facade and every
// comparison-code constructor.
func TestPublicPlansAndCodes(t *testing.T) {
	plan, err := NewVirtualPlan(5, LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.Metrics()
	if m.InvalidParityRatio != 0 || m.MigrationRatio != 0 {
		t.Error("Code 5-6 virtual plan should not invalidate or migrate")
	}
	ex := NewExecutor(plan, 64, 1)
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if err := ex.VerifyResult(); err != nil {
		t.Fatal(err)
	}

	if len(StandardConversions(7)) == 0 {
		t.Error("no standard conversions at n=7")
	}

	type ctor struct {
		name string
		mk   func() (Code, error)
	}
	for _, c := range []ctor{
		{"rdp", func() (Code, error) { return NewRDP(5) }},
		{"evenodd", func() (Code, error) { return NewEVENODD(5) }},
		{"xcode", func() (Code, error) { return NewXCode(5) }},
		{"hcode", func() (Code, error) { return NewHCode(5) }},
		{"hdp", func() (Code, error) { return NewHDP(5) }},
		{"pcode", func() (Code, error) { return NewPCode(5) }},
		{"pcode-p", func() (Code, error) { return NewPCodeP(5) }},
	} {
		code, err := c.mk()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s := NewStripe(code.Geometry(), 16)
		s.FillRandom(code, rand.New(rand.NewSource(2)))
		Encode(code, s)
		if !Verify(code, s) {
			t.Fatalf("%s: verify failed", c.name)
		}
		orig := s.Clone()
		es := EraseColumns(s, 0, 1)
		if _, err := Reconstruct(code, s, es); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !s.Equal(orig) {
			t.Fatalf("%s: wrong reconstruction", c.name)
		}
	}

	if !IsPrime(7) || IsPrime(9) || NextPrime(7) != 11 {
		t.Error("prime helpers wrong")
	}
	if eff := Code56StorageEfficiency(4); eff != 0.6 {
		t.Errorf("efficiency(4) = %v", eff)
	}
}

// TestPublicRecoveryAndScrub exercises the maintenance facade: optimized
// column recovery planning and array scrubbing with rotation.
func TestPublicRecoveryAndScrub(t *testing.T) {
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanColumnRecovery(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ConventionalRecoveryReads(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reads != 9 || conv != 12 {
		t.Errorf("recovery reads %d/%d, want 9/12", plan.Reads, conv)
	}

	a := NewRAID6(code, 64)
	a.SetRotation(true)
	buf := make([]byte, 64)
	for L := int64(0); L < int64(a.DataPerStripe()*2); L++ {
		if err := a.WriteBlock(L, buf); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(0).InjectLatentError(1)
	rep, err := a.Scrub(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 1 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("scrub report %+v", rep)
	}
}

// TestPublicArrayPersistence round-trips an array through the
// save/reassemble facade.
func TestPublicArrayPersistence(t *testing.T) {
	code, _ := New(5)
	a := NewRAID6(code, 64)
	b := bytes.Repeat([]byte{7}, 64)
	if err := a.WriteBlock(0, b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArray(&buf, a, 1); err != nil {
		t.Fatal(err)
	}
	restored, m, err := LoadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.CodeName != "code56" {
		t.Fatalf("manifest %+v", m)
	}
	out := make([]byte, 64)
	if err := restored.ReadBlock(0, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, b) {
		t.Fatal("contents lost")
	}
	if _, err := BuildCode(Manifest{Version: 1, CodeName: "rdp", P: 5, BlockSize: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestPublicMiscFacade covers the remaining facade surface.
func TestPublicMiscFacade(t *testing.T) {
	if _, err := NewOriented(5, Right); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOriented(4, Left); err == nil {
		t.Error("non-prime accepted")
	}
	code, _ := New(5)
	if k := code.Kind(0, 4); k != KindParityD {
		t.Errorf("Kind(0,4) = %v", k)
	}
	if k := code.Kind(0, 0); k != KindData {
		t.Errorf("Kind(0,0) = %v", k)
	}
	a := NewRAID6(code, 64)
	w, err := WrapRAID6(code, a.Disks())
	if err != nil {
		t.Fatal(err)
	}
	if w.Code().Name() != "code56" {
		t.Error("wrapped array lost its code")
	}
	r5, err := NewRAID5(4, 64, LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapRAID5(r5.Disks(), 4, LeftAsymmetric); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(Conversion{M: 4, SourceLayout: LeftAsymmetric, Code: code, Approach: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Conv.Approach != Direct || ViaRAID0 == ViaRAID4 {
		t.Error("approach constants wrong")
	}
}
