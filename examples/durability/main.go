// Durability: a file-backed migration survives kill -9. The arrays built
// by WithBackend("file:<dir>") live in sparse image files with a meta.json
// identity record, and their migrations journal every checkpoint through
// the directory's write-ahead intent log (wal.log). This walkthrough
// proves the whole chain: the parent process builds a durable RAID-5,
// re-execs itself as a child that starts the online RAID-5 → Code 5-6
// conversion and SIGKILLs itself halfway through — no deferred cleanup, no
// flushes, the moral equivalent of a power cut — then the parent reopens
// the directory with ResumeMigration, replays the intent log, finishes the
// conversion from the journaled watermark, and verifies the result
// block-for-block against what it originally wrote.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"time"

	code56 "code56"
)

const (
	disks   = 4 // p = 5
	block   = 1024
	stripes = 48
	rows    = stripes * disks // p-1 = 4 rows per Code 5-6 stripe
	blocks  = rows * (disks - 1)
	seed    = 11
)

func main() {
	if dir := os.Getenv("C56_DURABILITY_DIR"); dir != "" {
		child(dir)
		return
	}
	dir, err := os.MkdirTemp("", "code56-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build a durable RAID-5: block images, meta.json, everything on disk.
	r5, err := code56.NewRAID5Array(disks,
		code56.WithBackend("file:"+dir), code56.WithBlockSize(block))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	want := make([][]byte, blocks)
	for l := int64(0); l < blocks; l++ {
		b := make([]byte, block)
		rng.Read(b)
		want[l] = b
		if err := r5.WriteBlock(l, b); err != nil {
			log.Fatal(err)
		}
	}
	if err := r5.Disks().Sync(); err != nil {
		log.Fatal(err)
	}
	if err := r5.Disks().Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built file-backed RAID-5 in %s: %d disks, %d data blocks\n", dir, disks, blocks)

	// Re-exec as a child that migrates and kills itself mid-conversion.
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "C56_DURABILITY_DIR="+dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	err = cmd.Run()
	if err == nil {
		log.Fatal("child exited cleanly; it was supposed to die mid-migration")
	}
	fmt.Printf("child died mid-migration (%v) — exactly what we wanted\n", err)

	// Reopen the directory. ResumeMigration replays wal.log (truncating
	// any record torn by the kill), reopens the RAID-5, and hands back a
	// migrator parked at the last durable checkpoint.
	mig, err := code56.ResumeMigration(dir)
	if err != nil {
		log.Fatal(err)
	}
	converted, total := mig.Progress()
	fmt.Printf("resumed from the intent log at stripe %d of %d\n", converted, total)
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		log.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		log.Fatal(err)
	}
	mig.Journal().Close()
	fmt.Printf("conversion finished: %d stripes redone or completed after the crash\n",
		mig.Stats().StripesConverted)

	// Prove the crash cost nothing: every stripe consistent, scrub clean,
	// every data block exactly as written before the child was spawned.
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil || !ok {
			log.Fatalf("stripe %d inconsistent after resume (err=%v)", st, err)
		}
	}
	rep, err := r6.Scrub(stripes)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Clean() {
		log.Fatalf("scrub found damage: %+v", rep)
	}
	buf := make([]byte, block)
	for l := int64(0); l < blocks; l++ {
		if err := r6.ReadBlock(l, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, want[l]) {
			log.Fatalf("block %d differs from what was written before the crash", l)
		}
	}
	if err := r6.Disks().Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: all %d stripes consistent, scrub clean, all %d blocks intact\n",
		stripes, blocks)

	// The committed directory now identifies as a RAID-6; a second resume
	// says so instead of redoing anything.
	if err := r6.Disks().Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := code56.ResumeMigration(dir); !errors.Is(err, code56.ErrMigrationComplete) {
		log.Fatalf("resume after commit: want ErrMigrationComplete, got %v", err)
	}
	fmt.Println("resume after commit correctly reports the migration complete")
}

// child is the crashing half: it opens the durable RAID-5, starts the
// journaled migration with a tight checkpoint interval and a throttle slow
// enough to catch mid-flight, waits for the halfway mark, and SIGKILLs
// itself. Nothing below the kill ever runs.
func child(dir string) {
	r5, err := code56.OpenRAID5Array(dir)
	if err != nil {
		log.Fatal(err)
	}
	mig, err := code56.NewMigrator(r5, rows,
		code56.WithCheckpointInterval(1), code56.WithThrottle(2*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	if mig.Journal() == nil {
		log.Fatal("file-backed migration did not attach an intent log")
	}
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	for {
		converted, total := mig.Progress()
		if converted >= total/2 {
			fmt.Printf("child: %d of %d stripes converted — pulling the plug (kill -9)\n",
				converted, total)
			p, _ := os.FindProcess(os.Getpid())
			p.Kill()
			select {} // Kill is asynchronous; never get past it.
		}
		time.Sleep(time.Millisecond)
	}
}
