// Persistence: arrays and in-flight migrations survive process restarts.
// A migration is started, interrupted halfway, saved to disk, restored
// into a "new process", and resumed to completion — then the finished
// RAID-6 is saved with its superblock manifest and reassembled.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	code56 "code56"
)

func main() {
	dir, err := os.MkdirTemp("", "code56-persistence")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		disks   = 4 // p = 5
		stripes = 24
		block   = 1024
	)
	rows := int64(stripes * disks)
	blocks := rows * (disks - 1)

	r5, err := code56.NewRAID5(disks, block, code56.LeftAsymmetric)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	content := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, block)
		rng.Read(b)
		content[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			log.Fatal(err)
		}
	}

	// Start migrating; pause after a third of the stripes.
	mig, err := code56.NewOnlineMigrator(r5, rows)
	if err != nil {
		log.Fatal(err)
	}
	hit := make(chan struct{})
	var once sync.Once
	mig.SetProgressFunc(func(done, total int64) {
		if done >= int64(stripes/3) {
			once.Do(func() { close(hit) })
		}
	})
	mig.SetThrottle(2 * time.Millisecond) // keep the window open for the pause
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	<-hit
	mig.Pause()
	cursor, total := mig.Progress()
	fmt.Printf("migration paused at stripe %d/%d\n", cursor, total)

	// Persist the half-migrated disks and simulate a crash.
	snapPath := filepath.Join(dir, "mid-migration.snap")
	f, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := r5.Disks().Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("mid-migration snapshot saved to %s\n", snapPath)

	// "New process": restore and resume from the saved cursor.
	f, err = os.Open(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	diskSet, err := code56.LoadDiskArray(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	restored, err := code56.WrapRAID5(diskSet, disks, code56.LeftAsymmetric)
	if err != nil {
		log.Fatal(err)
	}
	mig2, err := code56.NewOnlineMigrator(restored, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := mig2.ResumeFrom(cursor); err != nil {
		log.Fatal(err)
	}
	if err := mig2.Start(); err != nil {
		log.Fatal(err)
	}
	if err := mig2.Wait(); err != nil {
		log.Fatal(err)
	}
	r6, err := mig2.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored migration completed")

	// Save the finished array with its superblock and reassemble it.
	arrPath := filepath.Join(dir, "array.c56")
	f, err = os.Create(arrPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := code56.SaveArray(f, r6, stripes); err != nil {
		log.Fatal(err)
	}
	f.Close()
	f, err = os.Open(arrPath)
	if err != nil {
		log.Fatal(err)
	}
	final, manifest, err := code56.LoadArray(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reassembled from superblock: code=%s p=%d stripes=%d\n",
		manifest.CodeName, manifest.P, manifest.Stripes)

	for st := int64(0); st < stripes; st++ {
		ok, err := final.VerifyStripe(st)
		if err != nil || !ok {
			log.Fatalf("stripe %d inconsistent after reassembly", st)
		}
	}
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L += 7 {
		row, disk := restored.Locate(L)
		cell := code56.Coord{Row: int(row % int64(disks)), Col: disk}
		if err := final.ReadCell(row/int64(disks), cell, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, content[L]) {
			log.Fatalf("block %d corrupted across the crash/restore cycle", L)
		}
	}
	fmt.Println("all stripes verified, data intact across crash, resume and reassembly")
}
