// Online migration: the paper's headline scenario. A 4-disk RAID-5 serves
// a live read/write workload while being converted, in place and online,
// to a 5-disk Code 5-6 RAID-6 (paper Algorithm 2). Afterwards the array
// survives a double disk failure that would have destroyed the RAID-5.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"

	code56 "code56"
)

const (
	disks     = 4 // p = 5
	stripes   = 64
	blockSize = 4096
)

func main() {
	rows := int64(stripes * (disks + 1 - 1)) // p-1 rows per stripe
	blocks := rows * (disks - 1)

	r5, err := code56.NewRAID5(disks, blockSize, code56.LeftAsymmetric)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	content := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, blockSize)
		rng.Read(b)
		content[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("RAID-5 ready: %d disks, %d data blocks\n", disks, blocks)

	mig, err := code56.NewOnlineMigrator(r5, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("conversion started; application keeps running:")

	// A concurrent application mutates the array mid-conversion.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, blockSize)
			for i := 0; i < 300; i++ {
				L := r.Int63n(blocks)
				if r.Intn(2) == 0 {
					if err := mig.Read(L, buf); err != nil {
						log.Fatal(err)
					}
					continue
				}
				b := make([]byte, blockSize)
				r.Read(b)
				mu.Lock()
				if err := mig.Write(L, b); err != nil {
					mu.Unlock()
					log.Fatal(err)
				}
				content[L] = b
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	if err := mig.Wait(); err != nil {
		log.Fatal(err)
	}
	converted, total := mig.Progress()
	fmt.Printf("conversion finished: %d/%d stripes (900 app ops served meanwhile)\n", converted, total)

	r6, err := mig.Result()
	if err != nil {
		log.Fatal(err)
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil || !ok {
			log.Fatalf("stripe %d inconsistent: %v", st, err)
		}
	}
	fmt.Println("all stripes verified as consistent RAID-6")

	// The payoff: survive the double failure RAID-5 could not.
	r6.Disks().Disk(0).Fail()
	r6.Disks().Disk(2).Fail()
	fmt.Println("disks 0 and 2 failed concurrently...")
	buf := make([]byte, blockSize)
	for L := int64(0); L < blocks; L += 17 {
		row, disk := r5.Locate(L)
		cell := code56.Coord{Row: int(row % int64(disks)), Col: disk}
		if err := r6.ReadCell(row/int64(disks), cell, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, content[L]) {
			log.Fatalf("block %d wrong under double failure", L)
		}
	}
	r6.Disks().Disk(0).Replace()
	r6.Disks().Disk(2).Replace()
	if err := r6.Rebuild(stripes, 0, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("... data served degraded and both disks rebuilt. RAID-6 achieved.")
}
