// Quickstart: encode a Code 5-6 stripe, lose two disks, and recover — the
// paper's core claim (an MDS RAID-6 code) in a dozen lines of API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	code56 "code56"
)

func main() {
	// Code 5-6 for p = 5 disks: a 4x5 stripe; column 4 holds diagonal
	// parity, the anti-diagonal of the left square holds the horizontal
	// parities (exactly where a left-asymmetric RAID-5 keeps them).
	code, err := code56.New(5)
	if err != nil {
		log.Fatal(err)
	}
	g := code.Geometry()
	fmt.Printf("Code 5-6, p=5: %d rows x %d columns per stripe\n", g.Rows, g.Cols)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			fmt.Printf("%-9s", code.Kind(r, c))
		}
		fmt.Println()
	}

	// Fill a stripe with random data and encode both parity families.
	stripe := code56.NewStripe(g, 4096)
	stripe.FillRandom(code, rand.New(rand.NewSource(1)))
	xors := code56.Encode(code, stripe)
	fmt.Printf("\nencoded: %d block XORs (optimal: 2(p-1)(p-3) = %d)\n", xors, 2*4*2)

	// Lose any two disks...
	original := stripe.Clone()
	erased := code56.EraseColumns(stripe, 1, 3)
	fmt.Printf("failed disks 1 and 3: %d blocks lost\n", len(erased))

	// ...and recover them with the paper's Algorithm 1.
	stats, err := code.ReconstructDouble(stripe, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	if !stripe.Equal(original) {
		log.Fatal("reconstruction mismatch")
	}
	fmt.Printf("recovered %d blocks: %d XORs, %d distinct blocks read\n",
		stats.Recovered, stats.XORs, stats.BlocksRead)
	fmt.Printf("decode cost per element: %d XORs (optimal: p-3 = %d)\n",
		stats.XORs/stats.Recovered, 5-3)
}
