// Fault injection: the migration surviving real-world disk trouble. A
// 4-disk RAID-5 with latent sector errors on two disks is converted online
// to a Code 5-6 RAID-6 while one disk is scheduled to fail-stop mid-way
// through the conversion. The conversion heals the latent errors as it
// walks them, the whole-disk failure parks the migration at its contiguous
// watermark, reads keep being served degraded, and after a hot-swap
// (Replace + rebuild) a second migrator resumes from the watermark and
// finishes. A final scrub and full read-back prove zero data loss.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	code56 "code56"
)

const (
	disks     = 4 // p = 5
	p         = disks + 1
	blockSize = 512
	stripes   = 8
	rows      = stripes * (p - 1)
	blocks    = rows * (disks - 1)
)

func main() {
	// A populated RAID-5.
	r5, err := code56.NewRAID5Array(disks, code56.WithBlockSize(blockSize))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	want := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, blockSize)
		rng.Read(b)
		want[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			log.Fatal(err)
		}
	}

	// Latent sector errors on two different disks, in early stripes: the
	// conversion will read those cells for diagonal parity, hit the error,
	// reconstruct the block from RAID-5 redundancy, and rewrite it.
	planted := 0
	seenDisk := map[int]bool{}
	seenRow := map[int64]bool{}
	for L := int64(0); L < blocks && planted < 2; L++ {
		row, disk := r5.Locate(L)
		// Stay within stripes 0-1, and use distinct disks and rows: RAID-5
		// redundancy reconstructs at most one lost block per row.
		if row >= 2*(p-1) || seenDisk[disk] || seenRow[row] {
			continue
		}
		seenDisk[disk] = true
		seenRow[row] = true
		r5.Disks().Disk(disk).InjectLatentError(row)
		fmt.Printf("planted latent sector error: disk %d, row %d\n", disk, row)
		planted++
	}

	// A retry policy absorbs transient errors, and disk 2 is scheduled to
	// fail-stop at its 14th I/O — mid-conversion.
	if err := r5.Disks().SetRetry(4, 50*time.Microsecond); err != nil {
		log.Fatal(err)
	}
	if err := r5.Disks().Disk(2).SetFaults(code56.FaultConfig{Seed: 7, FailAtIO: 14}); err != nil {
		log.Fatal(err)
	}

	// First migration attempt: heals the latent errors, then dies with the
	// disk. The contiguous watermark only covers fully converted stripes.
	mig, err := code56.NewOnlineMigrator(r5, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	err = mig.Wait()
	if !errors.Is(err, code56.ErrDiskFailed) {
		log.Fatalf("expected the scheduled disk failure, got %v", err)
	}
	watermark, total := mig.Progress()
	st := mig.Stats()
	fmt.Printf("conversion stopped by disk failure: %d/%d stripes converted, %d latent blocks healed in flight\n",
		watermark, total, st.FaultsRepaired)
	fmt.Printf("  (%v)\n", err)

	// The array keeps serving every block degraded while disk 2 is down.
	buf := make([]byte, blockSize)
	for L := int64(0); L < blocks; L++ {
		if err := r5.ReadBlock(L, buf); err != nil {
			log.Fatalf("degraded read of block %d: %v", L, err)
		}
		if !bytes.Equal(buf, want[L]) {
			log.Fatalf("degraded read of block %d returned wrong data", L)
		}
	}
	fmt.Printf("degraded service: all %d blocks readable with disk 2 failed\n", blocks)

	// Hot-swap: replace the disk and rebuild its RAID-5 contents, then
	// resume the conversion from the watermark. Partial diagonal writes
	// above the watermark are simply redone.
	r5.Disks().Disk(2).Replace()
	if err := r5.Rebuild(2, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk 2 replaced and rebuilt")

	mig2, err := code56.NewOnlineMigrator(r5, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := mig2.ResumeFrom(watermark); err != nil {
		log.Fatal(err)
	}
	if err := mig2.Start(); err != nil {
		log.Fatal(err)
	}
	if err := mig2.Wait(); err != nil {
		log.Fatal(err)
	}
	converted, _ := mig2.Progress()
	fmt.Printf("conversion resumed and finished: %d/%d stripes\n", converted, total)

	// Prove zero data loss: every stripe parity-consistent, a scrub finds
	// nothing to repair, every data block intact.
	r6, err := mig2.Result()
	if err != nil {
		log.Fatal(err)
	}
	for s := int64(0); s < stripes; s++ {
		ok, err := r6.VerifyStripe(s)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("stripe %d inconsistent after resume", s)
		}
	}
	rep, err := r6.ScrubWithMode(stripes, code56.ScrubCheck)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Clean() {
		log.Fatalf("scrub found residual damage: %+v", rep)
	}
	for L := int64(0); L < blocks; L++ {
		if err := r6.ReadBlock(L, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, want[L]) {
			log.Fatalf("block %d corrupted", L)
		}
	}
	fmt.Printf("verified: %d stripes consistent, scrub clean, all %d blocks intact — zero data loss\n",
		stripes, blocks)
}
