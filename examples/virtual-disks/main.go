// Virtual disks: migrating a RAID-5 whose size doesn't fit Code 5-6's
// prime geometry (paper §IV-B2, Fig. 8). A 3-disk RAID-5 becomes a 4-disk
// RAID-6 using the p=5 layout padded with one virtual (all-NULL,
// non-physical) disk; storage efficiency follows the paper's Eq. 6.
package main

import (
	"fmt"
	"log"

	code56 "code56"
)

func main() {
	// Plan the conversion for m = 3 disks: p = 5, one virtual disk.
	plan, err := code56.NewVirtualPlan(3, code56.LeftAsymmetric)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conversion: %s with %d virtual disk(s)\n", plan.Conv.Label(), plan.Virtual)
	fmt.Printf("per stripe: %d usable data blocks, %d parities reused, %d generated\n",
		plan.DataBlocks/plan.Period, plan.Reused/plan.Period, plan.Generated/plan.Period)

	m := plan.Metrics()
	fmt.Printf("costs per data block: %.3f writes, %.3f total I/O — nothing invalidated or migrated (%.0f/%.0f)\n",
		m.WriteRatio, m.TotalIORatio, m.InvalidParityRatio, m.MigrationRatio)

	// Execute the plan against simulated disks and verify the result.
	ex := code56.NewExecutor(plan, 4096, 99)
	if err := ex.Run(); err != nil {
		log.Fatal(err)
	}
	if err := ex.VerifyResult(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("executed on simulated disks: result verifies as consistent RAID-6, data intact")

	// The paper's Fig. 18: the virtual-disk penalty is marginal.
	fmt.Println("\nstorage efficiency (paper Eq. 6) vs typical MDS RAID-6:")
	fmt.Println("  m   typical   code56   penalty")
	for mDisks := 3; mDisks <= 12; mDisks++ {
		typ := float64(mDisks-1) / float64(mDisks+1)
		c56 := code56.Code56StorageEfficiency(mDisks)
		fmt.Printf("  %-3d %.4f    %.4f   %.4f\n", mDisks, typ, c56, typ-c56)
	}
}
