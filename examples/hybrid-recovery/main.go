// Hybrid recovery: rebuilding a single failed disk with fewer reads by
// mixing horizontal and diagonal parity chains (paper §III-E-4, Fig. 6).
// At p=5 the plan reads 9 blocks per stripe instead of the conventional 12.
package main

import (
	"fmt"
	"log"
	"math/rand"

	code56 "code56"
)

func main() {
	fmt.Println("single-disk recovery read cost per stripe (conventional vs hybrid):")
	for _, p := range []int{5, 7, 11, 13} {
		code, err := code56.New(p)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := code.PlanHybridRecovery(1)
		if err != nil {
			log.Fatal(err)
		}
		conv := code.ConventionalReads()
		fmt.Printf("  p=%-3d %3d reads -> %3d reads  (-%4.1f%%)\n",
			p, conv, plan.Reads, 100*(1-float64(plan.Reads)/float64(conv)))
	}

	// Execute the p=5 plan on a real stripe and show which chains it uses.
	code, _ := code56.New(5)
	stripe := code56.NewStripe(code.Geometry(), 4096)
	stripe.FillRandom(code, rand.New(rand.NewSource(3)))
	code56.Encode(code, stripe)
	original := stripe.Clone()

	const failed = 1
	plan, err := code.PlanHybridRecovery(failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np=5, disk %d failed; per-row chain choice:\n", failed)
	for row, useDiag := range plan.UseDiagonal {
		chain := "horizontal"
		if useDiag {
			chain = "diagonal"
		}
		fmt.Printf("  row %d -> %s\n", row, chain)
	}

	stripe.ZeroColumn(failed)
	stats, err := code.ExecuteRecoveryPlan(stripe, plan)
	if err != nil {
		log.Fatal(err)
	}
	if !stripe.Equal(original) {
		log.Fatal("hybrid recovery produced wrong contents")
	}
	fmt.Printf("recovered disk %d: %d distinct reads (plan promised %d), %d XORs\n",
		failed, stats.BlocksRead, plan.Reads, stats.XORs)
}
