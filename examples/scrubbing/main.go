// Scrubbing: the paper's motivation (§I, Table I) is that aging disks
// accumulate latent sector errors and undetected corruption faster than
// RAID-5 can tolerate. This example runs a Code 5-6 RAID-6 through both
// error classes and repairs them with a scrub pass — then shows the double
// protection surviving a concurrent full-disk failure on top.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	code56 "code56"
)

func main() {
	code, err := code56.New(7)
	if err != nil {
		log.Fatal(err)
	}
	array := code56.NewRAID6(code, 4096)
	array.SetRotation(true) // balance parity load across disks

	const stripes = 32
	blocks := int64(array.DataPerStripe() * stripes)
	rng := rand.New(rand.NewSource(11))
	content := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, 4096)
		rng.Read(b)
		content[L] = b
		if err := array.WriteBlock(L, b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("array ready: %d disks, %d stripes, %d data blocks\n", array.Disks().Len(), stripes, blocks)

	// Age the array: latent sector errors on three disks, plus one silent
	// corruption (a firmware bug writing garbage without reporting it).
	array.Disks().Disk(1).InjectLatentError(3)
	array.Disks().Disk(4).InjectLatentError(17)
	array.Disks().Disk(5).InjectLatentError(40)
	if err := array.Disks().Disk(2).Write(9, bytes.Repeat([]byte{0xBA}, 4096)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("injected: 3 latent sector errors + 1 silent corruption")

	rep, err := array.Scrub(stripes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: %d latent blocks rebuilt, %d corrupt blocks located and repaired, %d unrecoverable\n",
		rep.LatentRepaired, rep.CorruptRepaired, len(rep.Unrecoverable))

	// And the headline protection: even with a whole disk gone on top of
	// everything, data survives.
	array.Disks().Disk(3).Fail()
	buf := make([]byte, 4096)
	for L := int64(0); L < blocks; L++ {
		if err := array.ReadBlock(L, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, content[L]) {
			log.Fatalf("block %d wrong", L)
		}
	}
	array.Disks().Disk(3).Replace()
	if err := array.Rebuild(stripes, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk 3 failed, all data served degraded, disk rebuilt — array healthy")
}
