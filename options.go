package code56

import (
	"context"
	"fmt"
	"time"

	"code56/internal/parallel"
)

// Settings collects every knob the facade constructors and context entry
// points accept. Zero values mean "use the default"; apply options with the
// With* helpers rather than building a Settings by hand.
type Settings struct {
	// Workers bounds the goroutines a parallel entry point may use.
	// 0 means GOMAXPROCS; 1 forces the serial in-order path.
	Workers int
	// ChunkSize is the per-goroutine split (bytes) for chunked multi-source
	// XOR. 0 means the engine default (64 KiB).
	ChunkSize int
	// BatchBytes is the contiguous-stripe byte budget a worker claims at a
	// time in batched bulk operations. 0 means the engine default (1 MiB,
	// sized to a per-core L2 slice).
	BatchBytes int
	// BlockSize is the simulated block size in bytes (default 4096).
	BlockSize int
	// Orientation selects the Code 5-6 parity rotation (default Left).
	Orientation Orientation
	// Layout selects the RAID-5 parity rotation (default LeftAsymmetric).
	Layout RAID5Layout
	// Seed seeds the random data an Executor populates its disks with.
	Seed int64
	// Throttle inserts a pause after each stripe an OnlineMigrator
	// converts (0 = full speed).
	Throttle time.Duration
	// RetryMax and RetryBase describe the disks' transient-error retry
	// policy (see WithRetry). Zero means no retries.
	RetryMax  int
	RetryBase time.Duration
	// Faults, when non-nil, arms the constructed disks' deterministic
	// fault injector with this scenario (see WithFaults).
	Faults *FaultConfig
	// Backend selects where a constructed array's blocks live (see
	// WithBackend): "" or "mem:" for in-memory stores, "file:<dir>" for
	// durable sparse image files in <dir>.
	Backend string
	// CheckpointInterval is how many converted stripes may pass between
	// a journaled migration's intent-log checkpoints (0 = the default,
	// 16; see WithCheckpointInterval).
	CheckpointInterval int64

	// err records the first invalid option value; see Err.
	err error
}

// Err returns the first error produced while applying options (an option
// given an out-of-range value), or nil. Every facade entry point checks it
// before doing any work, so invalid values surface as errors rather than
// being silently replaced by defaults.
func (s *Settings) Err() error { return s.err }

// setErr keeps the first option error.
func (s *Settings) setErr(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Option adjusts one Settings field. All facade constructors and context
// entry points take a trailing ...Option; irrelevant options are ignored,
// so a single option list can be shared across calls. An option given an
// invalid value records an error that the receiving entry point returns
// (see Settings.Err).
type Option func(*Settings)

// WithWorkers bounds the worker goroutines of a parallel entry point.
// n == 0 selects the default (GOMAXPROCS); n == 1 forces serial execution.
// Negative values are an error.
func WithWorkers(n int) Option {
	return func(s *Settings) {
		if n < 0 {
			s.setErr(fmt.Errorf("code56: WithWorkers(%d): worker count cannot be negative (0 selects GOMAXPROCS)", n))
			return
		}
		s.Workers = n
	}
}

// WithChunkSize sets the per-goroutine block split, in bytes, for chunked
// multi-source XOR. Non-positive sizes are an error (omit the option for
// the engine default).
func WithChunkSize(b int) Option {
	return func(s *Settings) {
		if b <= 0 {
			s.setErr(fmt.Errorf("code56: WithChunkSize(%d): chunk size must be positive (omit the option for the default)", b))
			return
		}
		s.ChunkSize = b
	}
}

// WithBatchBytes sets the contiguous-work byte budget a worker claims at a
// time in batched bulk operations (encode, rebuild, scrub, plan execution):
// adjacent stripes are grouped until the batch reaches this many bytes, so
// each worker streams sequentially through disk addresses and one batch
// stays cache-resident. Non-positive sizes are an error (omit the option
// for the engine default of 1 MiB).
func WithBatchBytes(b int) Option {
	return func(s *Settings) {
		if b <= 0 {
			s.setErr(fmt.Errorf("code56: WithBatchBytes(%d): batch budget must be positive (omit the option for the default)", b))
			return
		}
		s.BatchBytes = b
	}
}

// WithBlockSize sets the simulated block size in bytes. Non-positive sizes
// are an error (omit the option for the 4096-byte default).
func WithBlockSize(b int) Option {
	return func(s *Settings) {
		if b <= 0 {
			s.setErr(fmt.Errorf("code56: WithBlockSize(%d): block size must be positive (omit the option for the default)", b))
			return
		}
		s.BlockSize = b
	}
}

// WithOrientation selects the Code 5-6 parity rotation.
func WithOrientation(o Orientation) Option { return func(s *Settings) { s.Orientation = o } }

// WithLayout selects the RAID-5 parity rotation.
func WithLayout(l RAID5Layout) Option { return func(s *Settings) { s.Layout = l } }

// WithSeed seeds an Executor's random disk contents.
func WithSeed(seed int64) Option { return func(s *Settings) { s.Seed = seed } }

// WithThrottle paces an online migration: the converter sleeps d after each
// stripe, bounding its interference with application I/O. Negative
// durations are an error.
func WithThrottle(d time.Duration) Option {
	return func(s *Settings) {
		if d < 0 {
			s.setErr(fmt.Errorf("code56: WithThrottle(%v): throttle cannot be negative", d))
			return
		}
		s.Throttle = d
	}
}

// WithRetry installs a transient-error retry policy on the disks an array
// constructor creates: a transiently failing I/O is retried up to n times,
// sleeping base, 2*base, 4*base, … between attempts. Negative values are an
// error; n == 0 disables retries.
func WithRetry(n int, base time.Duration) Option {
	return func(s *Settings) {
		if n < 0 || base < 0 {
			s.setErr(fmt.Errorf("code56: WithRetry(%d, %v): retry count and backoff base cannot be negative", n, base))
			return
		}
		s.RetryMax, s.RetryBase = n, base
	}
}

// WithFaults arms the deterministic fault injector on the disks an array
// constructor creates (see FaultConfig). An out-of-range config is an
// error.
func WithFaults(cfg FaultConfig) Option {
	return func(s *Settings) {
		if err := cfg.Validate(); err != nil {
			s.setErr(fmt.Errorf("code56: WithFaults: %w", err))
			return
		}
		c := cfg
		s.Faults = &c
	}
}

// WithBackend selects where a constructed array's blocks live. The spec
// grammar:
//
//	""           in-memory stores (the default; what the positional
//	             constructors always use)
//	"mem:"       in-memory stores, spelled out
//	"file:<dir>" durable sparse image files (one per disk) in <dir>,
//	             created if needed, alongside the directory's meta.json
//	             identity record and wal.log migration intent log
//
// File-backed arrays survive process death: reopen them with
// OpenRAID5Array / OpenRAID6Array, and restart an interrupted migration
// with ResumeMigration. Any other spec is an error.
func WithBackend(spec string) Option {
	return func(s *Settings) {
		if _, _, err := splitBackendSpec(spec); err != nil {
			s.setErr(err)
			return
		}
		s.Backend = spec
	}
}

// WithCheckpointInterval bounds how many converted stripes may pass
// between a journaled migration's intent-log checkpoints. Smaller
// intervals tighten the redo window after a crash at the cost of more
// fsync barriers; the default is 16 stripes. Non-positive intervals are
// an error. Ignored for migrations over in-memory arrays (they have no
// intent log).
func WithCheckpointInterval(stripes int64) Option {
	return func(s *Settings) {
		if stripes <= 0 {
			s.setErr(fmt.Errorf("code56: WithCheckpointInterval(%d): interval must be positive", stripes))
			return
		}
		s.CheckpointInterval = stripes
	}
}

// ApplyOptions folds opts over the package defaults and returns the result.
// Useful for callers that route one option list to several entry points;
// check Err before using the result.
func ApplyOptions(opts ...Option) Settings {
	s := Settings{
		BlockSize:   4096,
		Orientation: Left,
		Layout:      LeftAsymmetric,
	}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// applyDiskPolicies arms WithFaults / WithRetry on a constructed array's
// disks.
func (s *Settings) applyDiskPolicies(disks *DiskArray) error {
	if s.Faults != nil {
		if err := disks.SetFaults(*s.Faults); err != nil {
			return err
		}
	}
	if s.RetryMax > 0 || s.RetryBase > 0 {
		if err := disks.SetRetry(s.RetryMax, s.RetryBase); err != nil {
			return err
		}
	}
	return nil
}

// engineOpts translates facade settings to the stripe engine's options.
func (s Settings) engineOpts() []parallel.Option {
	var out []parallel.Option
	if s.Workers > 0 {
		out = append(out, parallel.WithWorkers(s.Workers))
	}
	if s.ChunkSize > 0 {
		out = append(out, parallel.WithChunkSize(s.ChunkSize))
	}
	if s.BatchBytes > 0 {
		out = append(out, parallel.WithBatchBytes(s.BatchBytes))
	}
	return out
}

// NewCode returns Code 5-6 for p disks (p prime), honoring WithOrientation.
// It is the option-based form of New / NewOriented.
func NewCode(p int, opts ...Option) (*Code56, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	return NewOriented(p, s.Orientation)
}

// NewRAID5Array creates a RAID-5 array of m fresh simulated disks, honoring
// WithBackend, WithBlockSize, WithLayout, WithFaults and WithRetry. It is
// the option-based form of NewRAID5 (which always builds in-memory disks).
// With a "file:<dir>" backend the array's blocks live in sparse image
// files under <dir> and the directory's meta.json identity record is
// written, so OpenRAID5Array can reassemble the array later.
func NewRAID5Array(m int, opts ...Option) (*RAID5, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	a, err := newRAID5Backend(m, s)
	if err != nil {
		return nil, err
	}
	if err := s.applyDiskPolicies(a.Disks()); err != nil {
		return nil, err
	}
	return a, nil
}

// NewRAID6Array creates a RAID-6 array over fresh simulated disks, honoring
// WithBackend, WithBlockSize, WithFaults and WithRetry. It is the
// option-based form of NewRAID6 (which always builds in-memory disks).
// With a "file:<dir>" backend the blocks live in sparse image files under
// <dir> and meta.json is written, so OpenRAID6Array can reassemble the
// array later.
func NewRAID6Array(code Code, opts ...Option) (*RAID6, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	a, err := newRAID6Backend(code, s)
	if err != nil {
		return nil, err
	}
	if err := s.applyDiskPolicies(a.Disks()); err != nil {
		return nil, err
	}
	return a, nil
}

// NewMigrator prepares an online RAID-5 → Code 5-6 migration, honoring
// WithWorkers (conversion parallelism), WithThrottle and
// WithCheckpointInterval. It is the option-based form of
// NewOnlineMigrator, plus durability: when the array is file-backed (its
// disks came from a "file:<dir>" backend), the migration is automatically
// journaled through the directory's intent log, making it crash-resumable
// via ResumeMigration.
func NewMigrator(a *RAID5, rows int64, opts ...Option) (*OnlineMigrator, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	m, err := NewOnlineMigrator(a, rows)
	if err != nil {
		return nil, err
	}
	if s.Workers > 0 {
		if err := m.SetParallelism(s.Workers); err != nil {
			return nil, err
		}
	}
	if s.Throttle > 0 {
		m.SetThrottle(s.Throttle)
	}
	if err := attachJournalIfDurable(m, a, s); err != nil {
		return nil, err
	}
	return m, nil
}

// NewPlanExecutor sets up an Executor for a conversion plan, honoring
// WithBlockSize and WithSeed. It is the option-based form of NewExecutor.
func NewPlanExecutor(plan *Plan, opts ...Option) (*Executor, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	return NewExecutor(plan, s.BlockSize, s.Seed), nil
}

// RunPlan executes a conversion plan under ctx with the plan's independent
// stripes spread across WithWorkers goroutines. Equivalent to
// Executor.RunContext; Executor.Run remains the serial form.
func RunPlan(ctx context.Context, ex *Executor, opts ...Option) error {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return err
	}
	return ex.RunContext(ctx, s.engineOpts()...)
}

// StartMigration starts an online migration bound to ctx: cancelling ctx
// stops the conversion at the next stripe boundary, leaving the array
// consistent and resumable (see OnlineMigrator.StartContext). WithWorkers
// and WithThrottle are applied before starting.
func StartMigration(ctx context.Context, m *OnlineMigrator, opts ...Option) error {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return err
	}
	if s.Workers > 0 {
		if err := m.SetParallelism(s.Workers); err != nil {
			return err
		}
	}
	if s.Throttle > 0 {
		m.SetThrottle(s.Throttle)
	}
	return m.StartContext(ctx)
}

// EncodeArrayStripes (re)computes all parities of stripes 0..stripes-1 of a
// RAID-6 array, fanning stripes out over WithWorkers goroutines.
func EncodeArrayStripes(ctx context.Context, a *RAID6, stripes int64, opts ...Option) error {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return err
	}
	return a.EncodeStripesContext(ctx, stripes, s.engineOpts()...)
}

// EncodeArrayStripesInterleaved is EncodeArrayStripes with interleaved
// batches: each worker claims a contiguous run of stripes and encodes it
// chain-by-chain across the whole run, so reads of each covering column and
// writes of each parity column stream sequentially instead of striding a
// full stripe between accesses. Results are bit-identical to
// EncodeArrayStripes.
func EncodeArrayStripesInterleaved(ctx context.Context, a *RAID6, stripes int64, opts ...Option) error {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return err
	}
	return a.EncodeStripesInterleavedContext(ctx, stripes, s.engineOpts()...)
}

// RebuildArray rebuilds the given replaced disks of a RAID-6 array across
// stripes 0..stripes-1 in parallel. Equivalent to Array.RebuildContext;
// Array.Rebuild remains the serial form.
func RebuildArray(ctx context.Context, a *RAID6, stripes int64, disks []int, opts ...Option) error {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return err
	}
	return a.RebuildContext(ctx, stripes, disks, s.engineOpts()...)
}

// ScrubArray scans stripes 0..stripes-1 of a RAID-6 array for latent sector
// errors and silent corruption, repairing what it can, with stripes spread
// over WithWorkers goroutines. Equivalent to Array.ScrubContext;
// Array.Scrub remains the serial form.
func ScrubArray(ctx context.Context, a *RAID6, stripes int64, opts ...Option) (ScrubReport, error) {
	return ScrubArrayMode(ctx, a, stripes, ScrubRepair, opts...)
}

// ScrubArrayMode is ScrubArray with an explicit repair/check mode:
// ScrubRepair rewrites what it can; ScrubCheck only detects and counts.
func ScrubArrayMode(ctx context.Context, a *RAID6, stripes int64, mode ScrubMode, opts ...Option) (ScrubReport, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return ScrubReport{}, err
	}
	return a.ScrubContextMode(ctx, stripes, mode, s.engineOpts()...)
}

// RecoverStripes rebuilds a failed column across many stripes concurrently
// using a column-recovery plan. Equivalent to ColumnRecoveryPlan's
// ExecuteStripes with the facade's options.
func RecoverStripes(ctx context.Context, plan ColumnRecoveryPlan, code Code, stripes []*Stripe, opts ...Option) (DecodeStats, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return DecodeStats{}, err
	}
	return plan.ExecuteStripes(ctx, code, stripes, nil, nil, s.engineOpts()...)
}
