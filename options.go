package code56

import (
	"context"
	"time"

	"code56/internal/parallel"
	"code56/internal/raid5"
	"code56/internal/raid6"
)

// Settings collects every knob the facade constructors and context entry
// points accept. Zero values mean "use the default"; apply options with the
// With* helpers rather than building a Settings by hand.
type Settings struct {
	// Workers bounds the goroutines a parallel entry point may use.
	// 0 means GOMAXPROCS; 1 forces the serial in-order path.
	Workers int
	// ChunkSize is the per-goroutine split (bytes) for chunked multi-source
	// XOR. 0 means the engine default (64 KiB).
	ChunkSize int
	// BlockSize is the simulated block size in bytes (default 4096).
	BlockSize int
	// Orientation selects the Code 5-6 parity rotation (default Left).
	Orientation Orientation
	// Layout selects the RAID-5 parity rotation (default LeftAsymmetric).
	Layout RAID5Layout
	// Seed seeds the random data an Executor populates its disks with.
	Seed int64
	// Throttle inserts a pause after each stripe an OnlineMigrator
	// converts (0 = full speed).
	Throttle time.Duration
}

// Option adjusts one Settings field. All facade constructors and context
// entry points take a trailing ...Option; irrelevant options are ignored,
// so a single option list can be shared across calls.
type Option func(*Settings)

// WithWorkers bounds the worker goroutines of a parallel entry point.
// n <= 0 restores the default (GOMAXPROCS); n == 1 forces serial execution.
func WithWorkers(n int) Option { return func(s *Settings) { s.Workers = n } }

// WithChunkSize sets the per-goroutine block split, in bytes, for chunked
// multi-source XOR. b <= 0 restores the engine default.
func WithChunkSize(b int) Option { return func(s *Settings) { s.ChunkSize = b } }

// WithBlockSize sets the simulated block size in bytes.
func WithBlockSize(b int) Option { return func(s *Settings) { s.BlockSize = b } }

// WithOrientation selects the Code 5-6 parity rotation.
func WithOrientation(o Orientation) Option { return func(s *Settings) { s.Orientation = o } }

// WithLayout selects the RAID-5 parity rotation.
func WithLayout(l RAID5Layout) Option { return func(s *Settings) { s.Layout = l } }

// WithSeed seeds an Executor's random disk contents.
func WithSeed(seed int64) Option { return func(s *Settings) { s.Seed = seed } }

// WithThrottle paces an online migration: the converter sleeps d after each
// stripe, bounding its interference with application I/O.
func WithThrottle(d time.Duration) Option { return func(s *Settings) { s.Throttle = d } }

// ApplyOptions folds opts over the package defaults and returns the result.
// Useful for callers that route one option list to several entry points.
func ApplyOptions(opts ...Option) Settings {
	s := Settings{
		BlockSize:   4096,
		Orientation: Left,
		Layout:      LeftAsymmetric,
	}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// engineOpts translates facade settings to the stripe engine's options.
func (s Settings) engineOpts() []parallel.Option {
	var out []parallel.Option
	if s.Workers > 0 {
		out = append(out, parallel.WithWorkers(s.Workers))
	}
	if s.ChunkSize > 0 {
		out = append(out, parallel.WithChunkSize(s.ChunkSize))
	}
	return out
}

// NewCode returns Code 5-6 for p disks (p prime), honoring WithOrientation.
// It is the option-based form of New / NewOriented.
func NewCode(p int, opts ...Option) (*Code56, error) {
	return NewOriented(p, ApplyOptions(opts...).Orientation)
}

// NewRAID5Array creates a RAID-5 array of m fresh simulated disks, honoring
// WithBlockSize and WithLayout. It is the option-based form of NewRAID5.
func NewRAID5Array(m int, opts ...Option) (*RAID5, error) {
	s := ApplyOptions(opts...)
	return raid5.New(m, s.BlockSize, s.Layout)
}

// NewRAID6Array creates a RAID-6 array over fresh simulated disks, honoring
// WithBlockSize. It is the option-based form of NewRAID6.
func NewRAID6Array(code Code, opts ...Option) *RAID6 {
	return raid6.New(code, ApplyOptions(opts...).BlockSize)
}

// NewMigrator prepares an online RAID-5 → Code 5-6 migration, honoring
// WithWorkers (conversion parallelism) and WithThrottle. It is the
// option-based form of NewOnlineMigrator.
func NewMigrator(a *RAID5, rows int64, opts ...Option) (*OnlineMigrator, error) {
	s := ApplyOptions(opts...)
	m, err := NewOnlineMigrator(a, rows)
	if err != nil {
		return nil, err
	}
	if s.Workers > 0 {
		if err := m.SetParallelism(s.Workers); err != nil {
			return nil, err
		}
	}
	if s.Throttle > 0 {
		m.SetThrottle(s.Throttle)
	}
	return m, nil
}

// NewPlanExecutor sets up an Executor for a conversion plan, honoring
// WithBlockSize and WithSeed. It is the option-based form of NewExecutor.
func NewPlanExecutor(plan *Plan, opts ...Option) *Executor {
	s := ApplyOptions(opts...)
	return NewExecutor(plan, s.BlockSize, s.Seed)
}

// RunPlan executes a conversion plan under ctx with the plan's independent
// stripes spread across WithWorkers goroutines. Equivalent to
// Executor.RunContext; Executor.Run remains the serial form.
func RunPlan(ctx context.Context, ex *Executor, opts ...Option) error {
	return ex.RunContext(ctx, ApplyOptions(opts...).engineOpts()...)
}

// StartMigration starts an online migration bound to ctx: cancelling ctx
// stops the conversion at the next stripe boundary, leaving the array
// consistent and resumable (see OnlineMigrator.StartContext). WithWorkers
// and WithThrottle are applied before starting.
func StartMigration(ctx context.Context, m *OnlineMigrator, opts ...Option) error {
	s := ApplyOptions(opts...)
	if s.Workers > 0 {
		if err := m.SetParallelism(s.Workers); err != nil {
			return err
		}
	}
	if s.Throttle > 0 {
		m.SetThrottle(s.Throttle)
	}
	return m.StartContext(ctx)
}

// EncodeArrayStripes (re)computes all parities of stripes 0..stripes-1 of a
// RAID-6 array, fanning stripes out over WithWorkers goroutines.
func EncodeArrayStripes(ctx context.Context, a *RAID6, stripes int64, opts ...Option) error {
	return a.EncodeStripesContext(ctx, stripes, ApplyOptions(opts...).engineOpts()...)
}

// RebuildArray rebuilds the given replaced disks of a RAID-6 array across
// stripes 0..stripes-1 in parallel. Equivalent to Array.RebuildContext;
// Array.Rebuild remains the serial form.
func RebuildArray(ctx context.Context, a *RAID6, stripes int64, disks []int, opts ...Option) error {
	return a.RebuildContext(ctx, stripes, disks, ApplyOptions(opts...).engineOpts()...)
}

// ScrubArray scans stripes 0..stripes-1 of a RAID-6 array for latent sector
// errors and silent corruption, repairing what it can, with stripes spread
// over WithWorkers goroutines. Equivalent to Array.ScrubContext;
// Array.Scrub remains the serial form.
func ScrubArray(ctx context.Context, a *RAID6, stripes int64, opts ...Option) (ScrubReport, error) {
	return a.ScrubContext(ctx, stripes, ApplyOptions(opts...).engineOpts()...)
}

// RecoverStripes rebuilds a failed column across many stripes concurrently
// using a column-recovery plan. Equivalent to ColumnRecoveryPlan's
// ExecuteStripes with the facade's options.
func RecoverStripes(ctx context.Context, plan ColumnRecoveryPlan, code Code, stripes []*Stripe, opts ...Option) (DecodeStats, error) {
	return plan.ExecuteStripes(ctx, code, stripes, nil, nil, ApplyOptions(opts...).engineOpts()...)
}
