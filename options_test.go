package code56

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestOptionDefaultsAndOverrides pins ApplyOptions' defaults and that each
// With* helper lands on its field.
func TestOptionDefaultsAndOverrides(t *testing.T) {
	s := ApplyOptions()
	if s.BlockSize != 4096 || s.Workers != 0 || s.ChunkSize != 0 ||
		s.Orientation != Left || s.Layout != LeftAsymmetric || s.Throttle != 0 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	s = ApplyOptions(
		WithWorkers(8), WithChunkSize(1<<20), WithBlockSize(64),
		WithBatchBytes(1<<19), WithOrientation(Right), WithLayout(RightSymmetric),
		WithSeed(7), WithThrottle(time.Millisecond), nil,
	)
	if s.Workers != 8 || s.ChunkSize != 1<<20 || s.BlockSize != 64 ||
		s.BatchBytes != 1<<19 || s.Orientation != Right || s.Layout != RightSymmetric ||
		s.Seed != 7 || s.Throttle != time.Millisecond {
		t.Fatalf("options not applied: %+v", s)
	}
}

// TestOptionValidation: invalid option values must produce descriptive
// errors from every option-based entry point rather than being silently
// replaced by defaults (they used to be dropped by `> 0` guards).
func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  Option
	}{
		{"WithWorkers(-3)", WithWorkers(-3)},
		{"WithChunkSize(0)", WithChunkSize(0)},
		{"WithChunkSize(-1)", WithChunkSize(-1)},
		{"WithBatchBytes(0)", WithBatchBytes(0)},
		{"WithBatchBytes(-1)", WithBatchBytes(-1)},
		{"WithBlockSize(0)", WithBlockSize(0)},
		{"WithBlockSize(-1)", WithBlockSize(-1)},
		{"WithThrottle(-1ms)", WithThrottle(-time.Millisecond)},
		{"WithRetry(-1, 0)", WithRetry(-1, 0)},
		{"WithRetry(2, -1ms)", WithRetry(2, -time.Millisecond)},
		{"WithFaults(prob 2)", WithFaults(FaultConfig{ReadTransientProb: 2})},
		{"WithFaults(FailAtIO -1)", WithFaults(FaultConfig{FailAtIO: -1})},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			s := ApplyOptions(tc.opt)
			if s.Err() == nil {
				t.Fatalf("%s accepted silently", tc.name)
			}

			if _, err := NewCode(5, tc.opt); err == nil {
				t.Errorf("NewCode swallowed %s", tc.name)
			}
			if _, err := NewRAID5Array(4, tc.opt); err == nil {
				t.Errorf("NewRAID5Array swallowed %s", tc.name)
			}
			code, err := NewCode(5)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewRAID6Array(code, tc.opt); err == nil {
				t.Errorf("NewRAID6Array swallowed %s", tc.name)
			}
			r5, err := NewRAID5Array(4, WithBlockSize(32))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewMigrator(r5, 4, tc.opt); err == nil {
				t.Errorf("NewMigrator swallowed %s", tc.name)
			}
			plan, err := NewVirtualPlan(4, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewPlanExecutor(plan, tc.opt); err == nil {
				t.Errorf("NewPlanExecutor swallowed %s", tc.name)
			}
			a, err := NewRAID6Array(code, WithBlockSize(32))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if err := EncodeArrayStripes(ctx, a, 1, tc.opt); err == nil {
				t.Errorf("EncodeArrayStripes swallowed %s", tc.name)
			}
			if _, err := ScrubArray(ctx, a, 1, tc.opt); err == nil {
				t.Errorf("ScrubArray swallowed %s", tc.name)
			}
			if err := RebuildArray(ctx, a, 1, nil, tc.opt); err == nil {
				t.Errorf("RebuildArray swallowed %s", tc.name)
			}
		})
	}

	// The first error wins and survives later valid options.
	s := ApplyOptions(WithBlockSize(-1), WithBlockSize(64), WithWorkers(2))
	if s.Err() == nil {
		t.Fatal("option error dropped by later valid options")
	}

	// Edge values that remain valid: 0 workers (GOMAXPROCS), 0 throttle,
	// 0 retries.
	s = ApplyOptions(WithWorkers(0), WithThrottle(0), WithRetry(0, 0))
	if s.Err() != nil {
		t.Fatalf("valid edge values rejected: %v", s.Err())
	}
}

// TestOptionFaultsAndRetryApply: WithFaults / WithRetry reach the disks the
// constructors create.
func TestOptionFaultsAndRetryApply(t *testing.T) {
	r5, err := NewRAID5Array(4, WithBlockSize(32),
		WithFaults(FaultConfig{Seed: 42, FailAtIO: 1}),
		WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// The first I/O against any disk must trip the scheduled failure.
	buf := make([]byte, 32)
	if err := r5.Disks().Disk(0).Read(0, buf); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("scheduled failure not armed via options: %v", err)
	}
}

// TestOptionConstructorsMatchPositional: the option-based constructors must
// be behaviorally identical to the positional forms they wrap.
func TestOptionConstructorsMatchPositional(t *testing.T) {
	c1, err := NewCode(5, WithOrientation(Right))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewOriented(5, Right)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Name() != c2.Name() || c1.Geometry() != c2.Geometry() {
		t.Fatal("NewCode diverges from NewOriented")
	}

	r5, err := NewRAID5Array(4, WithBlockSize(32), WithLayout(LeftSymmetric))
	if err != nil {
		t.Fatal(err)
	}
	if r5.M() != 4 || r5.Layout() != LeftSymmetric {
		t.Fatal("NewRAID5Array options ignored")
	}

	a, err := NewRAID6Array(c2, WithBlockSize(128))
	if err != nil {
		t.Fatal(err)
	}
	if a.Disks().Disk(0).BlockSize() != 128 {
		t.Fatal("NewRAID6Array block size ignored")
	}
}

// TestFacadeParallelLifecycle drives encode → scrub → fail → rebuild →
// recover through the option-based context entry points.
func TestFacadeParallelLifecycle(t *testing.T) {
	ctx := context.Background()
	code, err := NewCode(7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewRAID6Array(code, WithBlockSize(64))
	if err != nil {
		t.Fatal(err)
	}
	const stripes = 16
	r := rand.New(rand.NewSource(9))
	want := map[int64][]byte{}
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		b := make([]byte, 64)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := EncodeArrayStripes(ctx, a, stripes, WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	// The interleaved bulk encoder must be a drop-in: re-encoding already
	// consistent stripes leaves the array verifying clean.
	if err := EncodeArrayStripesInterleaved(ctx, a, stripes, WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	rep, err := ScrubArray(ctx, a, stripes, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stripes != stripes || rep.LatentRepaired != 0 || rep.CorruptRepaired != 0 {
		t.Fatalf("unexpected scrub report %+v", rep)
	}

	a.Disks().Disk(2).Fail()
	a.Disks().Disk(2).Replace()
	if err := RebuildArray(ctx, a, stripes, []int{2}, WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong after parallel rebuild", L)
		}
	}

	// Stripe-level recovery through the facade.
	plan, err := PlanColumnRecovery(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := code.Geometry()
	orig := NewStripe(g, 32)
	orig.FillRandom(code, r)
	Encode(code, orig)
	lost := []*Stripe{orig.Clone(), orig.Clone()}
	for _, s := range lost {
		s.ZeroColumn(1)
	}
	st, err := RecoverStripes(ctx, plan, code, lost, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksRead != 2*plan.Reads {
		t.Fatalf("aggregated reads %d, want %d", st.BlocksRead, 2*plan.Reads)
	}
	for i, s := range lost {
		if !s.Equal(orig) {
			t.Fatalf("stripe %d rebuilt wrong", i)
		}
	}
}

// TestFacadeMigrationOptions: NewMigrator and StartMigration honor
// WithWorkers/WithThrottle, run a full conversion, and propagate ctx
// cancellation through RunPlan.
func TestFacadeMigrationOptions(t *testing.T) {
	r5, err := NewRAID5Array(4, WithBlockSize(32))
	if err != nil {
		t.Fatal(err)
	}
	const rows = 16
	r := rand.New(rand.NewSource(10))
	want := map[int64][]byte{}
	for L := int64(0); L < rows*3; L++ {
		b := make([]byte, 32)
		r.Read(b)
		want[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	mig, err := NewMigrator(r5, rows, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := StartMigration(context.Background(), mig); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for L, w := range want {
		if err := r6.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong after migration", L)
		}
	}

	// RunPlan under a cancelled context stops before any work.
	plan, err := NewVirtualPlan(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewPlanExecutor(plan, WithBlockSize(32), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunPlan(ctx, ex, WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And a fresh run completes and verifies.
	ex, err = NewPlanExecutor(plan, WithBlockSize(32), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunPlan(context.Background(), ex, WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	if err := ex.VerifyResult(); err != nil {
		t.Fatal(err)
	}
}
