package code56

import (
	"fmt"
	"sort"
	"strings"

	"code56/internal/durable"
	"code56/internal/migrate"
	"code56/internal/raid5"
	"code56/internal/raid6"
	"code56/internal/superblock"
	"code56/internal/vdisk"
	"code56/internal/vdisk/filestore"
)

// Durable backends. An array built with WithBackend("file:<dir>") keeps
// its blocks in sparse image files under <dir>, one per disk, beside two
// bookkeeping files:
//
//	meta.json  the directory's identity (kind, geometry, layout/code),
//	           replaced atomically — a migration's final commit flips it
//	           from RAID-5 to RAID-6 in one rename
//	wal.log    the migration intent log (internal/wal): begin, watermark
//	           checkpoints, finish, meta-done
//
// The reopen entry points below need nothing but the directory: geometry
// comes from meta.json, the on-media disk set from scanning the image
// files, and in-flight migration state from replaying wal.log.

// BlockStore is the pluggable storage seam a simulated disk reads and
// writes through; Backend mints one store per disk slot. Implement these
// to put vdisk arrays on a custom medium (the built-ins are the in-memory
// store and the sparse-file store of WithBackend).
type (
	BlockStore = vdisk.BlockStore
	Backend    = vdisk.Backend
)

// MigrationJournal is a directory's migration intent log, attached to an
// OnlineMigrator (automatically by NewMigrator for file-backed arrays, or
// by ResumeMigration). See OnlineMigrator.Journal.
type MigrationJournal = migrate.Journal

// Durability sentinels, matchable with errors.Is.
var (
	// ErrNoMigration: the directory's intent log records no begun
	// migration to resume.
	ErrNoMigration = migrate.ErrNoMigration
	// ErrMigrationComplete: the directory already completed its
	// migration; open it with OpenRAID6Array.
	ErrMigrationComplete = migrate.ErrMigrationComplete
)

// splitBackendSpec validates and splits a WithBackend spec.
func splitBackendSpec(spec string) (kind, dir string, err error) {
	switch {
	case spec == "" || spec == "mem:":
		return "mem", "", nil
	case strings.HasPrefix(spec, "file:"):
		dir = strings.TrimPrefix(spec, "file:")
		if dir == "" {
			return "", "", fmt.Errorf("code56: WithBackend(%q): file backend needs a directory (file:<dir>)", spec)
		}
		return "file", dir, nil
	default:
		return "", "", fmt.Errorf("code56: WithBackend(%q): unknown backend spec (want \"mem:\" or \"file:<dir>\")", spec)
	}
}

// openBackend resolves the settings' backend spec to a vdisk backend and,
// for file backends, the array directory.
func (s *Settings) openBackend() (vdisk.Backend, string, error) {
	kind, dir, err := splitBackendSpec(s.Backend)
	if err != nil {
		return nil, "", err
	}
	if kind == "mem" {
		return vdisk.MemBackend{}, "", nil
	}
	fb, err := filestore.NewBackend(dir)
	if err != nil {
		return nil, "", err
	}
	return fb, dir, nil
}

// newRAID5Backend builds a fresh RAID-5 on the settings' backend, writing
// the directory's meta.json for file backends.
func newRAID5Backend(m int, s Settings) (*RAID5, error) {
	backend, dir, err := s.openBackend()
	if err != nil {
		return nil, err
	}
	disks, err := vdisk.NewArrayBackend(m, s.BlockSize, backend)
	if err != nil {
		return nil, err
	}
	a, err := raid5.Wrap(disks, m, s.Layout)
	if err != nil {
		disks.Close()
		return nil, err
	}
	if dir != "" {
		err := durable.Save(dir, durable.Meta{
			Version:   durable.MetaVersion,
			Kind:      durable.KindRAID5,
			BlockSize: s.BlockSize,
			Disks:     m,
			Layout:    s.Layout.String(),
		})
		if err != nil {
			disks.Close()
			return nil, err
		}
	}
	return a, nil
}

// newRAID6Backend builds a fresh RAID-6 on the settings' backend, writing
// the directory's meta.json for file backends.
func newRAID6Backend(code Code, s Settings) (*RAID6, error) {
	backend, dir, err := s.openBackend()
	if err != nil {
		return nil, err
	}
	cols := code.Geometry().Cols
	disks, err := vdisk.NewArrayBackend(cols, s.BlockSize, backend)
	if err != nil {
		return nil, err
	}
	a, err := raid6.Wrap(code, disks)
	if err != nil {
		disks.Close()
		return nil, err
	}
	if dir != "" {
		err := durable.Save(dir, durable.Meta{
			Version:   durable.MetaVersion,
			Kind:      durable.KindRAID6,
			BlockSize: s.BlockSize,
			Disks:     cols,
			Manifest: &superblock.Manifest{
				Version:   superblock.ManifestVersion,
				CodeName:  code.Name(),
				P:         code.Geometry().P,
				BlockSize: s.BlockSize,
			},
		})
		if err != nil {
			disks.Close()
			return nil, err
		}
	}
	return a, nil
}

// dirBackend is the capability an array's backend exposes when its disks
// live in a directory (satisfied by the filestore backend).
type dirBackend interface{ Dir() string }

// attachJournalIfDurable wires a migrator to its array directory's intent
// log when the array is file-backed; in-memory migrations stay unjournaled.
func attachJournalIfDurable(m *OnlineMigrator, a *RAID5, s Settings) error {
	db, ok := a.Disks().Backend().(dirBackend)
	if !ok {
		return nil
	}
	j, err := migrate.OpenJournal(db.Dir())
	if err != nil {
		return err
	}
	if s.CheckpointInterval > 0 {
		if err := j.SetCheckpointInterval(s.CheckpointInterval); err != nil {
			j.Close()
			return err
		}
	}
	if err := m.AttachJournal(j); err != nil {
		j.Close()
		return err
	}
	return nil
}

// openFileDisks scans dir for disk images and assembles them into a vdisk
// array, checking the on-media set covers the meta's disk count. extra
// images beyond it (a mid-migration diagonal-parity disk) are included —
// WrapRAID5 ignores trailing disks and a resumed migration expects its
// added disk to still be there.
func openFileDisks(dir string, meta durable.Meta) (*vdisk.Array, error) {
	fb, err := filestore.NewBackend(dir)
	if err != nil {
		return nil, err
	}
	ids, err := filestore.Scan(dir)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		// A directory with a meta.json but no images yet: mint the full
		// disk set (covers metadata written ahead of first write).
		for i := 0; i < meta.Disks; i++ {
			ids = append(ids, i)
		}
	}
	if len(ids) < meta.Disks {
		return nil, fmt.Errorf("code56: %s: %d disk images on media, meta.json expects %d", dir, len(ids), meta.Disks)
	}
	if !sort.IntsAreSorted(ids) || ids[0] != 0 || ids[len(ids)-1] != len(ids)-1 {
		return nil, fmt.Errorf("code56: %s: disk images are not a contiguous 0-based set: %v", dir, ids)
	}
	return vdisk.NewArrayFrom(meta.BlockSize, fb, ids)
}

// OpenRAID5Array reopens a file-backed RAID-5 previously created with
// NewRAID5Array(WithBackend("file:<dir>")): geometry and layout come from
// the directory's meta.json, contents from the disk images. WithFaults
// and WithRetry apply to the reopened disks; a directory whose meta says
// RAID-6 is an error (use OpenRAID6Array).
func OpenRAID5Array(dir string, opts ...Option) (*RAID5, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	meta, err := durable.Load(dir)
	if err != nil {
		return nil, err
	}
	if meta.Kind != durable.KindRAID5 {
		return nil, fmt.Errorf("code56: %s holds a %s array (use OpenRAID6Array)", dir, meta.Kind)
	}
	lay, err := durable.ParseLayout(meta.Layout)
	if err != nil {
		return nil, err
	}
	disks, err := openFileDisks(dir, meta)
	if err != nil {
		return nil, err
	}
	a, err := raid5.Wrap(disks, meta.Disks, lay)
	if err != nil {
		disks.Close()
		return nil, err
	}
	if err := s.applyDiskPolicies(disks); err != nil {
		disks.Close()
		return nil, err
	}
	return a, nil
}

// OpenRAID6Array reopens a file-backed RAID-6 — one created with
// NewRAID6Array(WithBackend("file:<dir>")), or a directory whose
// migration completed (the meta flip made it a RAID-6). The erasure code
// is rebuilt from the meta's manifest.
func OpenRAID6Array(dir string, opts ...Option) (*RAID6, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	meta, err := durable.Load(dir)
	if err != nil {
		return nil, err
	}
	if meta.Kind != durable.KindRAID6 {
		return nil, fmt.Errorf("code56: %s holds a %s array (use OpenRAID5Array)", dir, meta.Kind)
	}
	code, err := superblock.BuildCode(*meta.Manifest)
	if err != nil {
		return nil, err
	}
	disks, err := openFileDisks(dir, meta)
	if err != nil {
		return nil, err
	}
	a, err := raid6.Wrap(code, disks)
	if err != nil {
		disks.Close()
		return nil, err
	}
	a.SetRotation(meta.Manifest.Rotated)
	if err := s.applyDiskPolicies(disks); err != nil {
		disks.Close()
		return nil, err
	}
	return a, nil
}

// ResumeMigration reopens a file-backed array directory whose online
// migration was interrupted — killed, crashed, or cancelled — and
// prepares a migrator that continues it. The intent log is replayed
// (repairing any torn tail), the conversion resumes from the last durable
// watermark, and stripes converted after that watermark are simply redone
// (diagonal-parity conversion is idempotent). Start it like a fresh
// migration (Start / StartMigration), Wait, then Result.
//
// A directory that never began a migration returns ErrNoMigration; one
// whose migration fully committed returns ErrMigrationComplete (the array
// is a RAID-6 — open it with OpenRAID6Array). A migration that died
// between its last conversion barrier and the meta flip resumes
// trivially: the migrator finds nothing left to convert and redoes the
// idempotent commit sequence.
//
// WithWorkers, WithThrottle and WithCheckpointInterval apply to the
// resumed conversion; WithFaults and WithRetry to the reopened disks.
func ResumeMigration(dir string, opts ...Option) (*OnlineMigrator, error) {
	s := ApplyOptions(opts...)
	if err := s.Err(); err != nil {
		return nil, err
	}
	meta, err := durable.Load(dir)
	if err != nil {
		return nil, err
	}
	if meta.Kind == durable.KindRAID6 {
		return nil, fmt.Errorf("%w: %s", ErrMigrationComplete, dir)
	}
	j, err := migrate.OpenJournal(dir)
	if err != nil {
		return nil, err
	}
	st := j.State()
	switch {
	case !st.Begun:
		j.Close()
		return nil, fmt.Errorf("%w: %s", ErrNoMigration, dir)
	case st.MetaFlipped:
		j.Close()
		return nil, fmt.Errorf("%w: %s", ErrMigrationComplete, dir)
	}
	if st.Begin.BlockSize != meta.BlockSize {
		j.Close()
		return nil, fmt.Errorf("code56: %s: intent log block size %d vs meta.json %d", dir, st.Begin.BlockSize, meta.BlockSize)
	}
	a, err := OpenRAID5Array(dir, opts...)
	if err != nil {
		j.Close()
		return nil, err
	}
	closeAll := func() {
		a.Disks().Close()
		j.Close()
	}
	m, err := NewOnlineMigrator(a, st.Begin.Rows)
	if err != nil {
		closeAll()
		return nil, err
	}
	if s.Workers > 0 {
		if err := m.SetParallelism(s.Workers); err != nil {
			closeAll()
			return nil, err
		}
	}
	if s.Throttle > 0 {
		m.SetThrottle(s.Throttle)
	}
	if s.CheckpointInterval > 0 {
		if err := j.SetCheckpointInterval(s.CheckpointInterval); err != nil {
			closeAll()
			return nil, err
		}
	}
	if err := m.ResumeFrom(st.Cursor); err != nil {
		closeAll()
		return nil, err
	}
	if err := m.AttachJournal(j); err != nil {
		closeAll()
		return nil, err
	}
	return m, nil
}
